// Package api defines the wire types and request parameters of the
// slapd labeling service. It is the shared vocabulary of
// internal/server (which serves it) and client (which consumes it), so
// the two cannot drift; it depends on nothing but the standard library
// and is safe to import from any program that talks to a slapd.
//
// # Endpoints
//
//	POST /v1/label        one image in the body → LabelResponse
//	POST /v1/aggregate    one image in the body → AggregateResponse
//	POST /v1/label/batch  multipart/form-data, one image per part →
//	                      BatchResponse (results in part order)
//	GET  /healthz         200 HealthResponse while serving, 503 once
//	                      draining (the body carries queue depth, so a
//	                      coordinator can route by load)
//	GET  /metrics         Prometheus text format counters
//
// Image bodies may be PNG, plain PBM (P1), ASCII art, or the SLR1
// packed-bitset format; the format is sniffed from the content unless
// pinned by the "format" query parameter or the part/request
// Content-Type. Labeling options ride query parameters (see Params).
// When the service's admission queue is full it answers 429 with a
// Retry-After header (whole seconds); everything else non-2xx carries a
// JSON ErrorResponse.
package api

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"
)

// Endpoint paths.
const (
	PathLabel     = "/v1/label"
	PathAggregate = "/v1/aggregate"
	PathBatch     = "/v1/label/batch"
	PathHealthz   = "/healthz"
	PathMetrics   = "/metrics"
)

// Request lifecycle headers. Both flow client → slapfront → slapd, so
// a request is traceable and deadline-bounded across every tier.
const (
	// HeaderDeadlineMS carries the request's remaining time budget in
	// whole milliseconds. Every tier re-stamps the header with what is
	// left of its own deadline, so the budget shrinks as the request
	// crosses the fleet; a server whose queue cannot possibly meet the
	// budget fails fast with 504 instead of doing doomed work, and a
	// budget that expires mid-run stops a strip loop between strips.
	HeaderDeadlineMS = "X-Slap-Deadline-Ms"
	// HeaderRequestID identifies one logical request end to end. The
	// client generates it when absent; slapfront forwards the caller's
	// ID to every strip job it fans out; servers echo it on the
	// response and in ErrorResponse.RequestID, and include it in every
	// log line — so a soak failure is traceable across tiers.
	HeaderRequestID = "X-Slap-Request-Id"
)

// requestIDKey is the context key RequestID helpers use.
type requestIDKey struct{}

// ContextWithRequestID returns ctx carrying the request ID, the way
// callers hand an ID to the client (which stamps HeaderRequestID) and
// servers hand the incoming ID to everything downstream.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFromContext returns the request ID carried by ctx, or "".
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// NewRequestID returns a fresh random request ID (16 hex chars). It
// never fails: if the system's entropy pool is somehow unreadable the
// ID falls back to a process-local counter — uniqueness within one
// trace matters more than unguessability.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := fallbackID.Add(1)
		binary.BigEndian.PutUint64(b[:], n)
	}
	return hex.EncodeToString(b[:])
}

var fallbackID atomic.Uint64

// FormatDeadline renders a remaining budget as a HeaderDeadlineMS
// value: whole milliseconds, floored at 0 ("already spent").
func FormatDeadline(remaining time.Duration) string {
	ms := remaining.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	return strconv.FormatInt(ms, 10)
}

// ParseDeadline parses a HeaderDeadlineMS value. ok is false when the
// header is absent or malformed (a malformed hint is ignored rather
// than failing the request — the budget is advisory metadata, not part
// of the request's validity).
func ParseDeadline(h string) (remaining time.Duration, ok bool) {
	if h == "" {
		return 0, false
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil || ms < 0 {
		return 0, false
	}
	return time.Duration(ms) * time.Millisecond, true
}

// Params are the per-request labeling options, carried as query
// parameters on every POST endpoint. Zero values select the service's
// defaults (the paper's: 4-connectivity, Tarjan union–find, unit-cost
// links, array as wide as the image).
type Params struct {
	// Format pins the body codec: "png", "pbm", "art", "raw", or
	// "auto"/"" to sniff. Batch parts may override it per part via their
	// Content-Type.
	Format string
	// Connectivity is 4 or 8 (0 = the paper's 4).
	Connectivity int
	// UF names the union–find implementation (e.g. "tarjan", "blum").
	UF string
	// Cost selects the execution engine and its charge model: "unit"
	// (default) or "bitserial" (the Theorem 5 machine, word width derived
	// from the image's dimensions unless WordBits pins it) run the
	// metered simulator; "host" answers with the host engine — same
	// canonical labels and aggregate values, but no simulation, so the
	// response's Metrics is all zeros (no phases, no time steps) and UF
	// reports the host labeler's operation counts under kind "host".
	Cost string
	// WordBits pins the bit-serial word width (0 = derive from the
	// image's dimensions). A coordinator fanning strips of one image
	// across backends pins the whole image's width here, so per-strip
	// runs charge exactly what a local strip-mined run would.
	WordBits int
	// ArrayWidth strip-mines the run on an array of this many PEs when
	// the image is wider (0 = array as wide as the image).
	ArrayWidth int
	// Seam selects the strip-mined seam-relabel model: "distributed"
	// (the default — remap broadcast + per-PE rewrite, charged as array
	// phases) or "host" (the relabel charged as a sequential host pass).
	// Only meaningful with ArrayWidth set; see docs/METRICS.md.
	Seam string
	// Schedule selects the strip-composition schedule model:
	// "sequential" (the default) or "pipelined" (strip s+1's input
	// overlaps strip s's sweeps). Only meaningful with ArrayWidth set;
	// see docs/METRICS.md.
	Schedule string
	// WantLabels asks for the full per-pixel labeling in the response
	// (column-major, Background = -1). Off by default: a megapixel label
	// map is megabytes of JSON.
	WantLabels bool
	// Op is the aggregation monoid for /v1/aggregate: "min", "max",
	// "sum", or "or".
	Op string
	// Initial selects the initial per-pixel values for /v1/aggregate:
	// "ones" (Sum gives component areas) or "positions" (column-major
	// index; Min gives canonical labels). Default "ones".
	Initial string
	// InitialOffset shifts the "positions" initial values: pixel i gets
	// i + InitialOffset. A coordinator aggregating one image strip by
	// strip sets each strip's global column-major origin here, so the
	// per-strip folds are the ones the whole-image run computes.
	InitialOffset int
}

// Query encodes p as URL query parameters, omitting zero values.
func (p Params) Query() url.Values {
	q := url.Values{}
	set := func(k, v string) {
		if v != "" {
			q.Set(k, v)
		}
	}
	set("format", p.Format)
	if p.Connectivity != 0 {
		q.Set("conn", strconv.Itoa(p.Connectivity))
	}
	set("uf", p.UF)
	set("cost", p.Cost)
	if p.WordBits != 0 {
		q.Set("wordbits", strconv.Itoa(p.WordBits))
	}
	if p.ArrayWidth != 0 {
		q.Set("array", strconv.Itoa(p.ArrayWidth))
	}
	set("seam", p.Seam)
	set("schedule", p.Schedule)
	if p.WantLabels {
		q.Set("labels", "1")
	}
	set("op", p.Op)
	set("initial", p.Initial)
	if p.InitialOffset != 0 {
		q.Set("initialoffset", strconv.Itoa(p.InitialOffset))
	}
	return q
}

// ParamsFromQuery parses q into Params; it is the inverse of Query and
// rejects malformed numeric fields.
func ParamsFromQuery(q url.Values) (Params, error) {
	p := Params{
		Format:   q.Get("format"),
		UF:       q.Get("uf"),
		Cost:     q.Get("cost"),
		Op:       q.Get("op"),
		Initial:  q.Get("initial"),
		Seam:     q.Get("seam"),
		Schedule: q.Get("schedule"),
	}
	var err error
	if p.Connectivity, err = intParam(q, "conn"); err != nil {
		return p, err
	}
	if p.ArrayWidth, err = intParam(q, "array"); err != nil {
		return p, err
	}
	if p.WordBits, err = intParam(q, "wordbits"); err != nil {
		return p, err
	}
	if p.InitialOffset, err = intParam(q, "initialoffset"); err != nil {
		return p, err
	}
	switch q.Get("labels") {
	case "", "0", "false":
	case "1", "true":
		p.WantLabels = true
	default:
		return p, fmt.Errorf("api: bad labels parameter %q (want 0 or 1)", q.Get("labels"))
	}
	return p, nil
}

func intParam(q url.Values, key string) (int, error) {
	s := q.Get(key)
	if s == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("api: bad %s parameter %q: not an integer", key, s)
	}
	return v, nil
}

// PhaseMetrics is one simulated machine phase.
type PhaseMetrics struct {
	Name     string `json:"name"`
	Makespan int64  `json:"makespan"`
	Sends    int64  `json:"sends"`
	Words    int64  `json:"words"`
	Idle     int64  `json:"idle"`
	MaxQueue int    `json:"max_queue"`
}

// Metrics is the simulated machine accounting of a run.
type Metrics struct {
	// ArrayWidth is the physical PE count the run was charged on.
	ArrayWidth int `json:"array_width"`
	// TimeSteps is the total simulated makespan.
	TimeSteps int64 `json:"time_steps"`
	Sends     int64 `json:"sends"`
	Words     int64 `json:"words"`
	MaxQueue  int   `json:"max_queue"`
	PEMemory  int64 `json:"pe_memory_words"`
	// Phases is the per-phase breakdown, in execution order.
	Phases []PhaseMetrics `json:"phases,omitempty"`
}

// UFReport is the union–find accounting of a run.
type UFReport struct {
	Kind       string  `json:"kind"`
	Finds      int64   `json:"finds"`
	Unions     int64   `json:"unions"`
	TotalSteps int64   `json:"total_steps"`
	MaxOpCost  int64   `json:"max_op_cost"`
	MeanOpCost float64 `json:"mean_op_cost"`
}

// LabelResponse is one labeled frame.
type LabelResponse struct {
	Width      int `json:"width"`
	Height     int `json:"height"`
	Foreground int `json:"foreground"`
	Components int `json:"components"`
	// Largest is the pixel count of the largest component.
	Largest int      `json:"largest"`
	Metrics Metrics  `json:"metrics"`
	UF      UFReport `json:"uf"`
	// Labels is the per-pixel labeling in column-major order (index
	// x·Height + y; background −1), present only when requested with
	// labels=1.
	Labels []int32 `json:"labels,omitempty"`
}

// AggregateResponse is one aggregated frame.
type AggregateResponse struct {
	LabelResponse
	// Op echoes the monoid applied.
	Op string `json:"op"`
	// PerPixel is the per-pixel component fold in column-major order
	// (identity on background), present only when requested with
	// labels=1.
	PerPixel []int32 `json:"per_pixel,omitempty"`
}

// BatchItem is one frame's outcome within a batch.
type BatchItem struct {
	// Index is the zero-based multipart part index; results are
	// returned in part order.
	Index int `json:"index"`
	// Error is the per-frame failure, empty on success.
	Error string `json:"error,omitempty"`
	// Result is nil when Error is set.
	Result *LabelResponse `json:"result,omitempty"`
}

// BatchResponse is the outcome of /v1/label/batch.
type BatchResponse struct {
	Frames  int         `json:"frames"`
	Errors  int         `json:"errors"`
	Results []BatchItem `json:"results"`
}

// HealthResponse is the /healthz body: 200 with Status "ok" while
// serving, 503 with Status "draining" once shutdown drain begins. The
// load figures let a coordinator prefer idle backends without a
// second round-trip to /metrics.
type HealthResponse struct {
	Status string `json:"status"`
	// Inflight is the number of admitted requests currently in flight.
	Inflight int `json:"inflight"`
	// QueueDepth is how many of those are waiting for a worker.
	QueueDepth int `json:"queue_depth"`
	// Capacity is the admission bound: 429s begin at Inflight ==
	// Capacity.
	Capacity int `json:"capacity"`
	// Workers is the labeler pool size.
	Workers int `json:"workers"`
	// AdmissionLimit is the adaptive (AIMD) concurrency limit currently
	// in force, ≤ Capacity; a limit sagging below Capacity means the
	// server is shedding load to hold its latency target, so a router
	// sees pressure before 429s start. Omitted (0) by servers running
	// the fixed bound.
	AdmissionLimit int `json:"admission_limit,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx, non-429 response.
type ErrorResponse struct {
	Error string `json:"error"`
	// RequestID echoes HeaderRequestID when the request carried (or was
	// assigned) one, so an error seen tiers away is traceable in logs.
	RequestID string `json:"request_id,omitempty"`
}
