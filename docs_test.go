package slapcc

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocsLinks is the docs-gate link check: every relative markdown
// link in README.md and docs/ must point at a file (or directory) that
// exists in the repository. External links are not fetched.
func TestDocsLinks(t *testing.T) {
	files := []string{"README.md"}
	entries, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("expected at least ARCHITECTURE/METRICS/SLR1 under docs/, found %v", entries)
	}
	files = append(files, entries...)

	// Inline markdown links: [text](target). Fenced code blocks are
	// stripped first (their bodies may contain unbalanced backticks),
	// then inline code spans — confined to one line so a stray backtick
	// cannot swallow following text and hide a genuine broken link.
	fence := regexp.MustCompile("(?ms)^```.*?^```[ \t]*$")
	codeSpan := regexp.MustCompile("`[^`\n]*`")
	link := regexp.MustCompile(`\]\(([^)\s]+)\)`)
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		body := codeSpan.ReplaceAllString(fence.ReplaceAllString(string(raw), ""), "")
		for _, m := range link.FindAllStringSubmatch(body, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue // pure in-page anchor
			}
			resolved := filepath.Join(filepath.Dir(f), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s): %v", f, m[1], resolved, err)
			}
		}
	}
}

// TestGoCommentDocRefs sweeps every Go file's comments for repo-relative
// markdown references (docs/METRICS.md, README.md, …) and fails on any
// that point at files the repository does not contain. Doc files move
// and get renamed; comments citing them rot silently — this is the gate
// that caught comments citing long-deleted design docs.
func TestGoCommentDocRefs(t *testing.T) {
	// A markdown filename as it appears in prose: an optional directory
	// prefix plus a markdown basename. Bare names resolve against the
	// repo root — the convention comments here use ("see docs/METRICS.md").
	mdRef := regexp.MustCompile(`[A-Za-z0-9_./-]*[A-Za-z0-9_-]\.md\b`)
	comment := regexp.MustCompile(`(?m)^\s*//.*$|/\*(?s:.*?)\*/`)
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		for _, c := range comment.FindAllString(string(raw), -1) {
			for _, ref := range mdRef.FindAllString(c, -1) {
				// Skip obvious non-paths: glob/example placeholders.
				if strings.ContainsAny(ref, "*<>") {
					continue
				}
				if _, serr := os.Stat(filepath.FromSlash(ref)); serr != nil {
					t.Errorf("%s: comment cites %q, which does not exist in the repo", path, ref)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
