// Package slapcc labels the connected components of binary images on a
// simulated scan line array processor (SLAP), reproducing Greenberg,
// "Finding Connected Components on a Scan Line Array Processor",
// SPAA 1995.
//
// The SLAP is a SIMD linear array of n processing elements holding one
// image column each, exchanging one word per time step with its
// neighbors. Algorithm CC labels an n×n image with two systolic
// union–find sweeps plus a local merge: O(n lg n) worst case with
// Tarjan's union–find, O(n lg n / lg lg n) with a Blum-style structure
// (Theorem 3), and near-O(n) on typical images. The simulator counts the
// exact time steps the paper's model charges, so the package reports both
// the labeling and the machine-level cost of obtaining it.
//
// # Quick start
//
//	img := slapcc.MustParseImage("##.\n.#.\n..#")
//	res, err := slapcc.Label(img)
//	// res.Labels holds canonical component labels;
//	// res.Metrics.Time is the simulated SLAP makespan.
//
// Labels are canonical: every component carries the least column-major
// position (x·H + y) of its pixels; background pixels carry Background.
//
// # Labeling streams of images
//
// Label allocates almost nothing under steady load (it draws reusable
// machinery from an internal pool), but a stream of frames is served
// best by an explicit Labeler, which re-initializes its simulation
// arenas — the machine, per-column union–find structures, satellite
// arrays, and link buffers — in place on every call:
//
//	lab := slapcc.NewLabeler(slapcc.Options{})
//	for _, frame := range frames {
//		res, err := lab.Label(frame)
//		// res is independent of lab and stays valid;
//		// the next call reuses all working memory.
//	}
//
// A Labeler is not safe for concurrent use (use one per goroutine).
// Results and simulated metrics are bit-identical whether a Labeler is
// fresh, reused, or pooled — only host-side speed differs.
//
// The full evaluation suite lives in cmd/slapbench (see docs/METRICS.md);
// deeper control (union–find variants, bit-serial links, idle-time
// compression) is available through Options.
package slapcc

import (
	"slapcc/internal/bitmap"
	"slapcc/internal/core"
	"slapcc/internal/slap"
	"slapcc/internal/unionfind"
)

// Bitmap is a binary image; pixel (x, y) is column x, row y.
type Bitmap = bitmap.Bitmap

// LabelMap is a per-pixel component labeling.
type LabelMap = bitmap.LabelMap

// Background is the label of 0-pixels in a LabelMap.
const Background = bitmap.Background

// Connectivity selects which pixels count as adjacent.
type Connectivity = bitmap.Connectivity

// Supported connectivities: the paper's 4-connectivity (default) and the
// customary 8-connected extension.
const (
	Conn4 = bitmap.Conn4
	Conn8 = bitmap.Conn8
)

// Options configure a run; the zero value selects the paper's defaults
// (Tarjan union–find, unit-cost word links, input phase included).
type Options = core.Options

// Result is a labeling run's output: labels, machine metrics, and the
// union–find report.
type Result = core.Result

// Metrics is the simulated machine's accounting (total time, per-phase
// makespans, traffic, queue peaks, per-PE memory).
type Metrics = slap.Metrics

// CostModel assigns step charges to PE operations.
type CostModel = slap.CostModel

// Monoid is a commutative associative fold operator for Aggregate.
type Monoid = core.Monoid

// Engine selects which execution engine answers a run (Options.Engine):
// the metered SLAP simulation, or a word-parallel host labeler producing
// the same canonical labels and aggregate values with no simulated
// metrics. See docs/ARCHITECTURE.md, "The engine layer".
type Engine = core.Engine

// Engines selectable via Options.Engine.
const (
	EngineSim  = core.EngineSim  // default: the metered SLAP simulation
	EngineHost = core.EngineHost // host-side labeler; answers only, no Metrics
)

// SeamModel selects how a strip-mined run charges its seam relabel
// (Options.Seam): SeamDistributed broadcasts the remap table down the
// array and rewrites per PE; SeamHost charges a sequential host pass.
type SeamModel = core.SeamModel

// Seam-relabel models for Options.Seam; see docs/METRICS.md.
const (
	SeamDistributed = core.SeamDistributed // default: broadcast + per-PE rewrite
	SeamHost        = core.SeamHost        // sequential host pass (comparison model)
)

// ScheduleModel selects the strip-composition schedule
// (Options.Schedule): ScheduleSequential runs strips back to back;
// SchedulePipelined overlaps strip inputs with the previous strip's
// sweeps.
type ScheduleModel = core.ScheduleModel

// Strip schedule models for Options.Schedule; see docs/METRICS.md.
const (
	ScheduleSequential = core.ScheduleSequential // default: strips back to back
	SchedulePipelined  = core.SchedulePipelined  // overlap inputs under compute
)

// AggregateResult is Aggregate's output.
type AggregateResult = core.AggregateResult

// UFKind names a union–find implementation.
type UFKind = unionfind.Kind

// Union–find implementations selectable via Options.UF.
const (
	UFTarjan     = unionfind.KindTarjan     // weighted union + path compression (default)
	UFBlum       = unionfind.KindBlum       // Blum-style k-UF trees (Theorem 3)
	UFRank       = unionfind.KindRank       // union by rank + compression
	UFHalving    = unionfind.KindHalving    // one-pass path halving
	UFSplitting  = unionfind.KindSplitting  // one-pass path splitting
	UFNoCompress = unionfind.KindNoCompress // weighted union only
	UFQuickFind  = unionfind.KindQuickFind  // label-array sets
	UFNaiveLink  = unionfind.KindNaiveLink  // unbalanced linking (for ablations)
)

// Labeler runs Algorithm CC repeatedly without re-allocating its
// simulation state; see NewLabeler.
type Labeler = core.Labeler

// NewLabeler returns a reusable labeler for a stream of images: every
// Label or Aggregate call re-initializes the internal arenas in place,
// so a warm Labeler labels frames with (almost) no allocation. Results
// are independent of the Labeler and identical to the one-shot API's. A
// Labeler is not safe for concurrent use.
func NewLabeler(opt Options) *Labeler { return core.NewLabeler(opt) }

// LabelerPool shards Label calls across a fixed set of reusable
// labelers — the concurrent-use form of Labeler: up to Workers() calls
// run in parallel, each on its own warm arenas.
type LabelerPool = core.LabelerPool

// NewLabelerPool returns a pool of workers reusable labelers (≤ 0
// selects GOMAXPROCS).
func NewLabelerPool(opt Options, workers int) *LabelerPool {
	return core.NewLabelerPool(opt, workers)
}

// StreamResult is one frame's outcome from a LabelStream.
type StreamResult = core.StreamResult

// LabelStream labels a stream of independent frames across a pool of
// worker labelers, delivering results to a sink in submission order.
// On a multicore host the aggregate frame throughput scales with the
// workers (each frame's whole simulation runs in parallel with the
// others'); with one worker — the GOMAXPROCS default on a single-core
// host — it degenerates to a plain reused Labeler, never slower.
type LabelStream = core.LabelStream

// NewLabelStream returns a stream labeling frames under opt on workers
// worker labelers (≤ 0 selects GOMAXPROCS), delivering each frame's
// StreamResult to sink in submission order. Call Submit per frame and
// Close to drain.
func NewLabelStream(opt Options, workers int, sink func(StreamResult)) *LabelStream {
	return core.NewLabelStream(opt, workers, sink)
}

// Label runs Algorithm CC on img under default options.
func Label(img *Bitmap) (*Result, error) { return core.Label(img, Options{}) }

// LabelWithOptions runs Algorithm CC on img with explicit options.
func LabelWithOptions(img *Bitmap, opt Options) (*Result, error) { return core.Label(img, opt) }

// LabelLarge labels an image wider than the physical array by
// strip-mining: with 0 < opt.ArrayWidth < img.W(), the image is
// partitioned into vertical strips of at most ArrayWidth columns, each
// strip runs Algorithm CC on the fixed-width machine (zero-copy views
// over one warm arena set, or fanned across opt.StripWorkers worker
// labelers), and the strip-boundary seams are stitched by a host-side
// union–find pass that relabels to the global canonical least
// column-major labels. The labeling is bit-identical to a whole-image
// run's; the composed metrics follow a documented sequential schedule
// model (strips execute back to back on the one array; the stitch is
// charged as a "seam-merge" phase). With ArrayWidth 0 it is exactly
// Label: the array is as wide as the image.
func LabelLarge(img *Bitmap, opt Options) (*Result, error) { return core.LabelLarge(img, opt) }

// Aggregate labels every component of img with the op-fold of the
// initial per-pixel labels over the whole component (the paper's
// Corollary 4 extension). initial is indexed by column-major position.
// With 0 < opt.ArrayWidth < img.W() the run strip-mines onto the
// fixed-width array (see AggregateLarge); results are identical.
func Aggregate(img *Bitmap, initial []int32, op Monoid, opt Options) (*AggregateResult, error) {
	return core.Aggregate(img, initial, op, opt)
}

// SeamTime sums the makespans of a composed report's seam phases
// ("seam-merge", plus "seam-broadcast"/"seam-rewrite" under the
// distributed relabel) — the strip-mining overhead term next to the
// strips' own labeling time. Zero on whole-image runs.
func SeamTime(m Metrics) int64 { return core.SeamTime(m) }

// AggregateLarge runs the Corollary 4 aggregation on an image wider
// than the physical array by strip-mining, exactly as LabelLarge does
// for labeling: per-strip aggregation over zero-copy strip views, then
// a seam stitch that merges seam-crossing components and combines their
// per-strip folds under op. Per-pixel folds and labels are bit-identical
// to a whole-image run at every array width; composed metrics follow
// the selected Options.Seam and Options.Schedule models (see
// docs/METRICS.md). With ArrayWidth 0 it is exactly Aggregate.
func AggregateLarge(img *Bitmap, initial []int32, op Monoid, opt Options) (*AggregateResult, error) {
	return core.AggregateLarge(img, initial, op, opt)
}

// MinOf returns the minimum monoid (Corollary 4's operator).
func MinOf() Monoid { return core.Min() }

// MaxOf returns the maximum monoid.
func MaxOf() Monoid { return core.Max() }

// SumOf returns the addition monoid; with OnesOf it computes component
// areas.
func SumOf() Monoid { return core.Sum() }

// OrOf returns the bitwise-or monoid.
func OrOf() Monoid { return core.Or() }

// OnesOf returns an all-ones initial labeling for img.
func OnesOf(img *Bitmap) []int32 { return core.Ones(img) }

// UnitCost returns the standard SLAP cost model: one word per link per
// step.
func UnitCost() CostModel { return slap.Unit() }

// BitSerialCost returns the Theorem 5 restricted model: one bit per link
// per step for words of the given width.
func BitSerialCost(wordBits int) CostModel { return slap.BitSerial(wordBits) }

// WordBits returns the word width needed to carry labels of an n×n image.
func WordBits(n int) int { return slap.WordBitsFor(n) }

// WordBitsDims returns the word width needed to carry labels of a w×h
// image: ⌈lg max(2, 2·w·h)⌉, since labels are column-major positions
// offset by w·h for the right pass. Use this instead of WordBits(max(w,
// h)) for non-square images, which the square form over-charges.
func WordBitsDims(w, h int) int { return slap.WordBitsForDims(w, h) }

// NewImage returns an all-zero w×h image.
func NewImage(w, h int) *Bitmap { return bitmap.New(w, h) }

// ParseImage builds an image from ASCII art ('#'/'1' foreground, '.'/'0'
// background, one row per line).
func ParseImage(art string) (*Bitmap, error) { return bitmap.Parse(art) }

// MustParseImage is ParseImage that panics on error.
func MustParseImage(art string) *Bitmap { return bitmap.MustParse(art) }

// RandomImage returns an n×n image with i.i.d. pixel density.
func RandomImage(n int, density float64, seed uint64) *Bitmap {
	return bitmap.Random(n, density, seed)
}

// GenerateFamily produces the n×n member of a named workload family
// (see FamilyNames); it reports false for unknown names.
func GenerateFamily(name string, n int) (*Bitmap, bool) {
	f, ok := bitmap.FamilyByName(name)
	if !ok {
		return nil, false
	}
	return f.Generate(n), true
}

// FamilyNames lists the built-in workload families.
func FamilyNames() []string {
	fams := bitmap.Families()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.Name
	}
	return names
}
