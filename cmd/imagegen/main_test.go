package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"slapcc/internal/bitmap"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out, runErr
}

func TestGenerateArt(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-family", "checker", "-n", "4", "-art"})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := bitmap.Checker(4).String()
	if out != want {
		t.Fatalf("art mismatch:\n%q\nwant\n%q", out, want)
	}
}

func TestGeneratePBMFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.pbm")
	if _, err := capture(t, func() error {
		return run([]string{"-family", "spiral", "-n", "9", "-o", path})
	}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	img, err := bitmap.ReadPBM(f)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(bitmap.Spiral(9)) {
		t.Fatal("PBM round trip through imagegen failed")
	}
}

func TestList(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-list"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "maze") {
		t.Fatalf("family list incomplete:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-family", "nope"},
		{"-family", "checker", "-n", "0"},
		{"-family", "checker", "-o", "/nonexistent-dir/x.pbm"},
	} {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}
