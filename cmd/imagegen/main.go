// Command imagegen emits workload-family images as plain PBM (P1) or
// ASCII art, for inspection and for feeding cmd/slapcc.
//
// Usage:
//
//	imagegen -family fig3a -n 16 -art
//	imagegen -family random50 -n 128 -o img.pbm
//	imagegen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"slapcc/internal/bitmap"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "imagegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("imagegen", flag.ContinueOnError)
	var (
		family = fs.String("family", "", "workload family (see -list)")
		n      = fs.Int("n", 32, "image size")
		out    = fs.String("o", "", "output PBM path (default stdout)")
		art    = fs.Bool("art", false, "emit ASCII art instead of PBM")
		list   = fs.Bool("list", false, "list families and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, f := range bitmap.Families() {
			fmt.Printf("%-14s %s\n", f.Name, f.Description)
		}
		return nil
	}
	f, ok := bitmap.FamilyByName(*family)
	if !ok {
		return fmt.Errorf("unknown family %q (try -list)", *family)
	}
	if *n < 1 {
		return fmt.Errorf("invalid size %d", *n)
	}
	img := f.Generate(*n)

	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}
	if *art {
		_, err := fmt.Fprint(w, img.String())
		return err
	}
	return img.WritePBM(w)
}
