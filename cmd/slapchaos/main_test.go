package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestShortSoak runs the whole harness — real slapfront, three real
// backends behind chaos proxies, a kill/restart/latency/err500/burst
// schedule scaled down to a few seconds — and requires the SLOs to
// hold: zero mismatches, zero unexplained errors, drained gauges.
func TestShortSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	out := &bytes.Buffer{}
	rep := filepath.Join(t.TempDir(), "BENCH_chaos.json")
	err := run([]string{
		"-duration", "5s",
		"-concurrency", "2",
		"-sizes", "48",
		"-out", rep,
	}, out)
	if err != nil {
		t.Fatalf("soak failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "SLO: all green") {
		t.Fatalf("no green SLO verdict:\n%s", out.String())
	}
	// Every successful request carried a trace; the stage-sum audit must
	// have actually run (a green verdict with zero audits would be vacuous).
	if !strings.Contains(out.String(), "traces: ") || strings.Contains(out.String(), "traces: 0 audited") {
		t.Fatalf("trace audit did not run:\n%s", out.String())
	}
}

// TestParseSchedule pins the schedule DSL: well-formed entries parse in
// time order, malformed ones fail loudly.
func TestParseSchedule(t *testing.T) {
	evs, err := parseSchedule("10s:kill:1; 5s:latency:0:100ms:2s ;20s:burst:8", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 || evs[0].kind != "latency" || evs[1].kind != "kill" || evs[2].kind != "burst" {
		t.Fatalf("parsed %+v", evs)
	}
	if evs[0].delay != 100*time.Millisecond || evs[0].window != 2*time.Second || evs[2].burst != 8 {
		t.Fatalf("args lost: %+v", evs)
	}
	for _, bad := range []string{
		"5s:kill:3",       // backend out of range
		"5s:explode:0",    // unknown kind
		"nope:kill:0",     // bad offset
		"5s:latency:0:1s", // missing window
		"5s:burst:0",      // zero burst
		"kill:0",          // missing offset
	} {
		if _, err := parseSchedule(bad, 3); err == nil {
			t.Errorf("schedule %q accepted", bad)
		}
	}
}
