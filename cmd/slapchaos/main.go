// Command slapchaos is the tail-tolerance soak harness: it boots a real
// slapfront coordinator over an in-process fleet of N real slapd
// backends — each behind a fault-injecting chaos proxy — then drives
// mixed verified traffic through a declarative fault schedule (backend
// kills and restarts, latency windows, 500 windows, truncated bodies,
// overload bursts) and asserts the service-level objectives that the
// robustness machinery exists to defend:
//
//   - zero response mismatches: every answer, no matter which backend
//     died mid-strip, is bit-identical to the in-process reference
//     (built by the host engine by default — the same labels and folds
//     as the simulator at a fraction of the cost, so soak verification
//     is ~free; -verifyengine sim re-simulates and additionally pins
//     composed simulated time);
//   - zero unexplained errors: only admission shedding (429/503) and
//     deadline expiry (504) are legitimate failures under chaos;
//   - a p99 latency bound: hedging and re-sharding must keep the tail
//     from inheriting a straggler's stall;
//   - drained gauges: when traffic stops, every backend's outstanding
//     count returns to zero — no leaked slots, no stuck hedges.
//
// Usage:
//
//	slapchaos -duration 60s -backends 3 -concurrency 4 \
//	          -schedule "5s:latency:0:300ms:5s;15s:kill:1;25s:restart:1;35s:err500:2:3s;45s:burst:32" \
//	          -out BENCH_chaos.json
//
// The schedule is OFFSET:KIND[:ARGS] entries separated by semicolons:
//
//	kill:N             close backend N's listener mid-flight (crash)
//	restart:N          re-listen backend N on its original address
//	latency:N:D:W      delay backend N's requests by D for window W
//	err500:N:W         backend N answers 500 for window W
//	truncate:N:W       backend N truncates response bodies for window W
//	burst:C            fire C concurrent no-retry requests (overload)
//
// Exit status is nonzero on any SLO breach; the JSON report (same
// BENCH_*.json idiom as slapload) records what happened either way.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"slapcc"
	"slapcc/api"
	"slapcc/client"
	"slapcc/internal/cluster"
	"slapcc/internal/cluster/chaos"
	"slapcc/internal/obs"
	"slapcc/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "slapchaos:", err)
		os.Exit(1)
	}
}

// ---- fleet -----------------------------------------------------------

// fleetBackend is one in-process slapd behind its chaos proxy. The
// bound address survives kill/restart cycles so slapfront's backend
// list stays valid: a kill closes the listener (in-flight connections
// die abruptly, like a crashed process), a restart re-listens on the
// same port.
type fleetBackend struct {
	idx   int
	inner *server.Server
	proxy *chaos.Proxy
	addr  string

	mu sync.Mutex
	hs *http.Server
	up bool
}

func newFleetBackend(idx, workers int) (*fleetBackend, error) {
	b := &fleetBackend{
		idx:   idx,
		inner: server.New(server.Config{Workers: workers}),
	}
	b.proxy = chaos.NewProxy(b.inner, func(n int) chaos.Decision { return chaos.Decision{Mode: chaos.Pass} })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	b.addr = ln.Addr().String()
	b.serve(ln)
	return b, nil
}

func (b *fleetBackend) serve(ln net.Listener) {
	hs := &http.Server{Handler: b.proxy}
	b.mu.Lock()
	b.hs, b.up = hs, true
	b.mu.Unlock()
	go hs.Serve(ln)
}

// kill crashes the backend: the listener closes and every open
// connection is severed without draining.
func (b *fleetBackend) kill() error {
	b.mu.Lock()
	hs := b.hs
	b.hs, b.up = nil, false
	b.mu.Unlock()
	if hs == nil {
		return fmt.Errorf("backend %d already down", b.idx)
	}
	return hs.Close()
}

// restart re-listens on the original address. The port was freed by
// kill, but give the kernel a beat to release it.
func (b *fleetBackend) restart() error {
	b.mu.Lock()
	up := b.up
	b.mu.Unlock()
	if up {
		return fmt.Errorf("backend %d already up", b.idx)
	}
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		if ln, err = net.Listen("tcp", b.addr); err == nil {
			b.serve(ln)
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("backend %d: re-listen %s: %w", b.idx, b.addr, err)
}

// window arms a fault on the backend's proxy for dur, then reverts to
// Pass. The plan closure checks the wall clock per request, so no
// un-arming race can wedge the proxy in a faulty state.
func (b *fleetBackend) window(mode chaos.Mode, delay, dur time.Duration) {
	until := time.Now().Add(dur)
	b.proxy.SetPlan(func(n int) chaos.Decision {
		if time.Now().Before(until) {
			return chaos.Decision{Mode: mode, Delay: delay}
		}
		return chaos.Decision{Mode: chaos.Pass}
	})
}

func (b *fleetBackend) shutdown() {
	b.mu.Lock()
	hs := b.hs
	b.hs, b.up = nil, false
	b.mu.Unlock()
	b.proxy.Close()
	if hs != nil {
		hs.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	b.inner.Shutdown(ctx)
}

// ---- fault schedule --------------------------------------------------

// event is one parsed schedule entry.
type event struct {
	at      time.Duration
	kind    string
	backend int
	delay   time.Duration // latency events
	window  time.Duration // windowed events
	burst   int           // burst events
	raw     string
}

// parseSchedule parses "OFFSET:KIND[:ARGS];..." into time-ordered
// events, validating backend indices against the fleet size.
func parseSchedule(s string, backends int) ([]event, error) {
	var evs []event
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("schedule entry %q: want OFFSET:KIND[:ARGS]", entry)
		}
		at, err := time.ParseDuration(parts[0])
		if err != nil || at < 0 {
			return nil, fmt.Errorf("schedule entry %q: bad offset %q", entry, parts[0])
		}
		ev := event{at: at, kind: parts[1], raw: entry}
		idx := func(s string) (int, error) {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 || n >= backends {
				return 0, fmt.Errorf("schedule entry %q: backend %q out of range [0,%d)", entry, s, backends)
			}
			return n, nil
		}
		args := parts[2:]
		switch ev.kind {
		case "kill", "restart":
			if len(args) != 1 {
				return nil, fmt.Errorf("schedule entry %q: want %s:N", entry, ev.kind)
			}
			if ev.backend, err = idx(args[0]); err != nil {
				return nil, err
			}
		case "latency":
			if len(args) != 3 {
				return nil, fmt.Errorf("schedule entry %q: want latency:N:DELAY:WINDOW", entry)
			}
			if ev.backend, err = idx(args[0]); err != nil {
				return nil, err
			}
			if ev.delay, err = time.ParseDuration(args[1]); err != nil {
				return nil, fmt.Errorf("schedule entry %q: bad delay: %w", entry, err)
			}
			if ev.window, err = time.ParseDuration(args[2]); err != nil {
				return nil, fmt.Errorf("schedule entry %q: bad window: %w", entry, err)
			}
		case "err500", "truncate":
			if len(args) != 2 {
				return nil, fmt.Errorf("schedule entry %q: want %s:N:WINDOW", entry, ev.kind)
			}
			if ev.backend, err = idx(args[0]); err != nil {
				return nil, err
			}
			if ev.window, err = time.ParseDuration(args[1]); err != nil {
				return nil, fmt.Errorf("schedule entry %q: bad window: %w", entry, err)
			}
		case "burst":
			if len(args) != 1 {
				return nil, fmt.Errorf("schedule entry %q: want burst:CONCURRENCY", entry)
			}
			if ev.burst, err = strconv.Atoi(args[0]); err != nil || ev.burst < 1 {
				return nil, fmt.Errorf("schedule entry %q: bad burst size", entry)
			}
		default:
			return nil, fmt.Errorf("schedule entry %q: unknown kind %q", entry, ev.kind)
		}
		evs = append(evs, ev)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	return evs, nil
}

// ---- verified traffic ------------------------------------------------

// workItem is one pre-verified request shape the loop fires repeatedly.
type workItem struct {
	name  string
	kind  string // label | aggregate
	data  []byte
	ctype string
	p     api.Params

	wantLabels []int32
	wantTime   int64
	wantPixels []int32 // aggregate only
	w, h       int
}

// buildWork precomputes the traffic mix: whole-image labels,
// strip-mined labels (the shape that fans out across the fleet), and
// strip-mined aggregates, each with its in-process reference answer.
// The engine builds the references: the host engine produces the same
// labels and folds as the simulator without simulating, so the soak's
// verification setup is ~free; only a sim-built reference pins the
// composed TimeSteps too (a host reference stores −1, skipping that
// comparison in fire).
func buildWork(sizes []int, array int, density float64, engine slapcc.Engine) ([]workItem, error) {
	simRef := engine != slapcc.EngineHost
	refTime := func(t int64) int64 {
		if simRef {
			return t
		}
		return -1
	}
	var work []workItem
	seed := uint64(0xC0)
	for _, n := range sizes {
		for k := 0; k < 2; k++ {
			img := slapcc.RandomImage(n, density, seed)
			seed++
			data, ctype, err := client.EncodeImage(img, "raw")
			if err != nil {
				return nil, err
			}
			whole, err := slapcc.LabelWithOptions(img, slapcc.Options{Engine: engine})
			if err != nil {
				return nil, err
			}
			work = append(work, workItem{
				name: fmt.Sprintf("label-%d-%d", n, k), kind: "label",
				data: data, ctype: ctype,
				p:          api.Params{WantLabels: true},
				wantLabels: flatten(whole.Labels), wantTime: refTime(whole.Metrics.Time),
				w: img.W(), h: img.H(),
			})
			if array > 0 && array < n {
				strip, err := slapcc.LabelLarge(img, slapcc.Options{ArrayWidth: array, Engine: engine})
				if err != nil {
					return nil, err
				}
				work = append(work, workItem{
					name: fmt.Sprintf("label-%d-%d-aw%d", n, k, array), kind: "label",
					data: data, ctype: ctype,
					p:          api.Params{ArrayWidth: array, WantLabels: true},
					wantLabels: flatten(strip.Labels), wantTime: refTime(strip.Metrics.Time),
					w: img.W(), h: img.H(),
				})
				agg, err := slapcc.AggregateLarge(img, slapcc.OnesOf(img), slapcc.SumOf(), slapcc.Options{ArrayWidth: array, Engine: engine})
				if err != nil {
					return nil, err
				}
				work = append(work, workItem{
					name: fmt.Sprintf("agg-%d-%d-aw%d", n, k, array), kind: "aggregate",
					data: data, ctype: ctype,
					p:          api.Params{Op: "sum", ArrayWidth: array, WantLabels: true},
					wantLabels: flatten(agg.Labels), wantTime: refTime(agg.Metrics.Time),
					wantPixels: agg.PerPixel,
					w:          img.W(), h: img.H(),
				})
			}
		}
	}
	if len(work) == 0 {
		return nil, fmt.Errorf("empty work mix (sizes %v, array %d)", sizes, array)
	}
	return work, nil
}

func flatten(lm *slapcc.LabelMap) []int32 {
	out := make([]int32, 0, lm.W()*lm.H())
	for x := 0; x < lm.W(); x++ {
		out = append(out, lm.ColumnSlice(x)...)
	}
	return out
}

func labelsMatch(got []int32, want []int32) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// ---- report ----------------------------------------------------------

type report struct {
	DurationS   float64  `json:"duration_s"`
	Backends    int      `json:"backends"`
	Concurrency int      `json:"concurrency"`
	Schedule    []string `json:"schedule"`
	Requests    int64    `json:"requests"`
	Mismatches  int64    `json:"mismatches"`
	Errors      struct {
		Shed        int64 `json:"shed_429_503"`
		Deadline    int64 `json:"deadline_504"`
		Unexplained int64 `json:"unexplained"`
	} `json:"errors"`
	LatencyMS struct {
		P50  float64 `json:"p50"`
		P95  float64 `json:"p95"`
		P99  float64 `json:"p99"`
		Mean float64 `json:"mean"`
		Max  float64 `json:"max"`
	} `json:"latency_ms"`
	Bursts struct {
		Fired       int `json:"fired"`
		OK          int `json:"ok"`
		Rejected429 int `json:"rejected_429"`
		Errors      int `json:"errors"`
	} `json:"bursts"`
	Counters struct {
		Retries      int64 `json:"retries"`
		Fallbacks    int64 `json:"fallbacks"`
		BreakerOpens int64 `json:"breaker_opens"`
		Hedges       int64 `json:"hedges"`
		HedgeWins    int64 `json:"hedge_wins"`
	} `json:"counters"`
	// Trace audits the Server-Timing stage breakdown of every successful
	// request: stages must be present, and their sum can never exceed
	// the request's wall time (each top-level stage is a disjoint slice
	// of the coordinator's handling).
	Trace struct {
		Checked     int64  `json:"checked"`
		Breaches    int64  `json:"breaches"`
		FirstBreach string `json:"first_breach,omitempty"`
	} `json:"trace"`
	OutstandingDrained bool     `json:"outstanding_drained"`
	FirstUnexplained   string   `json:"first_unexplained,omitempty"`
	SLOBreaches        []string `json:"slo_breaches"`
}

// ---- the harness -----------------------------------------------------

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("slapchaos", flag.ContinueOnError)
	var (
		duration = fs.Duration("duration", 60*time.Second, "how long the verified traffic loop runs")
		backends = fs.Int("backends", 3, "in-process slapd backends in the fleet")
		workers  = fs.Int("workers", 2, "labeler pool size per backend")
		conc     = fs.Int("concurrency", 4, "concurrent closed-loop clients")
		sizes    = fs.String("sizes", "48,96", "comma-separated square frame sizes")
		array    = fs.Int("array", 16, "array width for strip-mined traffic (0 = whole-image only)")
		density  = fs.Float64("density", 0.5, "foreground density of generated frames")
		schedule = fs.String("schedule", "", "fault schedule OFFSET:KIND[:ARGS];... (empty = a default kill/latency/err500/burst mix scaled to -duration)")
		p99max   = fs.Duration("p99max", 10*time.Second, "SLO: p99 latency bound (0 disables)")
		hedgeDly = fs.Duration("hedgedelay", 50*time.Millisecond, "slapfront hedge delay floor")
		hedgeMax = fs.Int("hedgemax", 2, "slapfront hedges per request (0 disables)")
		reqWait  = fs.Duration("timeout", 30*time.Second, "per-request deadline budget")
		verifyEn = fs.String("verifyengine", "host", "engine that builds the reference answers: host (default; ~free, pins labels and folds) or sim (re-simulates, also pins composed simulated time)")
		outPath  = fs.String("out", "", "write the JSON report here as well as stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var refEngine slapcc.Engine
	switch strings.ToLower(*verifyEn) {
	case "host":
		refEngine = slapcc.EngineHost
	case "sim":
		refEngine = slapcc.EngineSim
	default:
		return fmt.Errorf("bad -verifyengine %q (want host or sim)", *verifyEn)
	}
	sizeList, err := parseInts(*sizes)
	if err != nil {
		return fmt.Errorf("bad -sizes: %w", err)
	}
	if *schedule == "" {
		*schedule = defaultSchedule(*duration)
	}
	events, err := parseSchedule(*schedule, *backends)
	if err != nil {
		return err
	}

	work, err := buildWork(sizeList, *array, *density, refEngine)
	if err != nil {
		return err
	}

	// Boot the fleet.
	fleet := make([]*fleetBackend, *backends)
	urls := make([]string, *backends)
	for i := range fleet {
		if fleet[i], err = newFleetBackend(i, *workers); err != nil {
			return err
		}
		urls[i] = "http://" + fleet[i].addr
		defer fleet[i].shutdown()
	}

	// Boot slapfront over it: fast probes so kills are noticed within
	// the soak, hedging on, breaker settings scaled to the fault windows.
	co := cluster.New(cluster.Config{
		Backends:         urls,
		JobTimeout:       5 * time.Second,
		RetryBudget:      4,
		BackoffBase:      10 * time.Millisecond,
		BackoffMax:       250 * time.Millisecond,
		ProbeInterval:    250 * time.Millisecond,
		ProbeTimeout:     time.Second,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Second,
		HedgeDelay:       *hedgeDly,
		HedgeMax:         *hedgeMax,
	})
	defer co.Close()
	frontLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	frontHS := &http.Server{Handler: co, ReadHeaderTimeout: 5 * time.Second}
	go frontHS.Serve(frontLn)
	defer frontHS.Close()
	frontURL := "http://" + frontLn.Addr().String()
	fmt.Fprintf(out, "slapchaos: front %s over %d backends, %d events, %v soak\n",
		frontURL, *backends, len(events), *duration)

	rep := &report{Backends: *backends, Concurrency: *conc}
	for _, ev := range events {
		rep.Schedule = append(rep.Schedule, ev.raw)
	}

	// The traffic loop: -conc clients, each request verified against its
	// precomputed reference. The client retries 429/503 internally; what
	// surfaces here is classified for the SLO ledger.
	c := client.New(frontURL, client.WithMaxRetries(6), client.WithMaxRetryWait(500*time.Millisecond))
	stop := make(chan struct{})
	var (
		next             atomic.Int64
		requests         atomic.Int64
		mismatches       atomic.Int64
		shed             atomic.Int64
		deadline504      atomic.Int64
		unexplained      atomic.Int64
		firstUnexplained atomic.Value
		traceChecked     atomic.Int64
		traceBreaches    atomic.Int64
		firstTraceBad    atomic.Value
		latMu            sync.Mutex
		lats             []time.Duration
	)
	var wg sync.WaitGroup
	for g := 0; g < *conc; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, 1024)
			for {
				select {
				case <-stop:
					latMu.Lock()
					lats = append(lats, local...)
					latMu.Unlock()
					return
				default:
				}
				wi := &work[int(next.Add(1))%len(work)]
				ctx, cancel := context.WithTimeout(context.Background(), *reqWait)
				// The request carries a trace so the client grafts the
				// coordinator's Server-Timing stages under it.
				tr := obs.New("", wi.name, nil)
				t0 := time.Now()
				ok, err := fire(obs.ContextWith(ctx, tr.Root()), c, wi)
				d := time.Since(t0)
				tr.Finish()
				cancel()
				requests.Add(1)
				switch {
				case err == nil:
					local = append(local, d)
					if !ok {
						mismatches.Add(1)
					}
					traceChecked.Add(1)
					if msg := auditTrace(tr, d); msg != "" {
						traceBreaches.Add(1)
						firstTraceBad.CompareAndSwap(nil, wi.name+": "+msg)
					}
				case isShed(err):
					shed.Add(1)
				case isDeadline(err):
					deadline504.Add(1)
				default:
					unexplained.Add(1)
					firstUnexplained.CompareAndSwap(nil, fmt.Sprintf("%s: %v", wi.name, err))
				}
			}
		}()
	}

	// The fault scheduler walks the event list against the soak clock.
	soakStart := time.Now()
	schedDone := make(chan struct{})
	go func() {
		defer close(schedDone)
		for _, ev := range events {
			wait := ev.at - time.Since(soakStart)
			if wait > 0 {
				select {
				case <-time.After(wait):
				case <-stop:
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
			fmt.Fprintf(out, "slapchaos: +%6.1fs %s\n", time.Since(soakStart).Seconds(), ev.raw)
			switch ev.kind {
			case "kill":
				if err := fleet[ev.backend].kill(); err != nil {
					fmt.Fprintf(out, "slapchaos: %s: %v\n", ev.raw, err)
				}
			case "restart":
				if err := fleet[ev.backend].restart(); err != nil {
					fmt.Fprintf(out, "slapchaos: %s: %v\n", ev.raw, err)
				}
			case "latency":
				fleet[ev.backend].window(chaos.Delay, ev.delay, ev.window)
			case "err500":
				fleet[ev.backend].window(chaos.Error500, 0, ev.window)
			case "truncate":
				fleet[ev.backend].window(chaos.Truncate, 0, ev.window)
			case "burst":
				ok, rej, errs := fireBurst(frontURL, work, ev.burst, *reqWait)
				rep.Bursts.Fired += ev.burst
				rep.Bursts.OK += ok
				rep.Bursts.Rejected429 += rej
				rep.Bursts.Errors += errs
			}
		}
	}()

	time.Sleep(*duration)
	close(stop)
	wg.Wait()
	<-schedDone
	rep.DurationS = time.Since(soakStart).Seconds()

	rep.Requests = requests.Load()
	rep.Mismatches = mismatches.Load()
	rep.Errors.Shed = shed.Load()
	rep.Errors.Deadline = deadline504.Load()
	rep.Errors.Unexplained = unexplained.Load()
	if s, ok := firstUnexplained.Load().(string); ok {
		rep.FirstUnexplained = s
	}
	rep.Trace.Checked = traceChecked.Load()
	rep.Trace.Breaches = traceBreaches.Load()
	if s, ok := firstTraceBad.Load().(string); ok {
		rep.Trace.FirstBreach = s
	}
	fillLatency(rep, lats)

	// Drain check: with traffic stopped, every backend's outstanding
	// gauge must return to zero — a leaked hedge or unreleased slot
	// shows up here.
	rep.OutstandingDrained = waitDrained(frontURL, 10*time.Second)

	// Robustness counters, scraped from the real /metrics endpoint.
	scrapeCounters(frontURL, rep)

	// The SLO verdict.
	if rep.Mismatches > 0 {
		rep.SLOBreaches = append(rep.SLOBreaches, fmt.Sprintf("%d response mismatches (want 0)", rep.Mismatches))
	}
	if rep.Errors.Unexplained > 0 {
		rep.SLOBreaches = append(rep.SLOBreaches,
			fmt.Sprintf("%d unexplained errors (want 0; first: %s)", rep.Errors.Unexplained, rep.FirstUnexplained))
	}
	if *p99max > 0 && rep.LatencyMS.P99 > float64(*p99max)/float64(time.Millisecond) {
		rep.SLOBreaches = append(rep.SLOBreaches,
			fmt.Sprintf("p99 %.1fms over the %v bound", rep.LatencyMS.P99, *p99max))
	}
	if !rep.OutstandingDrained {
		rep.SLOBreaches = append(rep.SLOBreaches, "outstanding gauges did not drain to 0")
	}
	if rep.Trace.Breaches > 0 {
		rep.SLOBreaches = append(rep.SLOBreaches,
			fmt.Sprintf("%d trace breaches (want 0; first: %s)", rep.Trace.Breaches, rep.Trace.FirstBreach))
	}
	if rep.Requests == 0 {
		rep.SLOBreaches = append(rep.SLOBreaches, "no traffic completed")
	}
	if rep.SLOBreaches == nil {
		rep.SLOBreaches = []string{}
	}

	summarize(out, rep)
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "report written to %s\n", *outPath)
	}
	if len(rep.SLOBreaches) > 0 {
		return fmt.Errorf("SLO breached: %s", strings.Join(rep.SLOBreaches, "; "))
	}
	return nil
}

// defaultSchedule scales the canonical kill/latency/err500/burst mix to
// the soak length: faults land in the middle three fifths, leaving a
// clean warmup and a clean tail.
func defaultSchedule(d time.Duration) string {
	fifth := d / 5
	f := func(mult int) string { return (time.Duration(mult) * fifth).String() }
	return strings.Join([]string{
		f(1) + ":latency:0:300ms:" + fifth.String(),
		f(2) + ":kill:1",
		f(3) + ":restart:1",
		f(3) + ":err500:2:" + (fifth / 2).String(),
		f(4) + ":burst:32",
	}, ";")
}

// fire sends one verified request; ok=false means the answer diverged
// from the in-process reference.
func fire(ctx context.Context, c *client.Client, wi *workItem) (bool, error) {
	switch wi.kind {
	case "aggregate":
		resp, err := c.AggregateData(ctx, wi.data, wi.ctype, wi.p)
		if err != nil {
			return false, err
		}
		if (wi.wantTime >= 0 && resp.Metrics.TimeSteps != wi.wantTime) || !labelsMatch(resp.Labels, wi.wantLabels) {
			return false, nil
		}
		if len(resp.PerPixel) != len(wi.wantPixels) {
			return false, nil
		}
		for i, v := range wi.wantPixels {
			if resp.PerPixel[i] != v {
				return false, nil
			}
		}
		return true, nil
	default:
		resp, err := c.LabelData(ctx, wi.data, wi.ctype, wi.p)
		if err != nil {
			return false, err
		}
		return resp.Width == wi.w && resp.Height == wi.h &&
			(wi.wantTime < 0 || resp.Metrics.TimeSteps == wi.wantTime) &&
			labelsMatch(resp.Labels, wi.wantLabels), nil
	}
}

// auditTrace cross-checks a successful request's grafted Server-Timing
// stages against its wall time: stages must be present (the service
// always emits the breakdown on success), and their sum cannot exceed
// the wall time the client observed — each top-level stage is a
// disjoint slice of the coordinator's handling. The margin absorbs
// rounding (durations ride the header in milliseconds) and scheduling
// slop.
func auditTrace(tr *obs.Trace, wall time.Duration) string {
	stages := tr.Stages()
	if len(stages) == 0 {
		return "success with no Server-Timing stages"
	}
	var sum time.Duration
	for _, st := range stages {
		sum += st.Dur
	}
	if limit := wall + wall/10 + 25*time.Millisecond; sum > limit {
		return fmt.Sprintf("stage sum %v exceeds wall %v", sum, wall)
	}
	return ""
}

// fireBurst is the overload probe: burst concurrent no-retry requests;
// 429/503 shedding is the expected answer at the margin.
func fireBurst(url string, work []workItem, burst int, timeout time.Duration) (ok, rejected, errs int) {
	c := client.New(url, client.WithMaxRetries(0), client.WithHTTPClient(&http.Client{Timeout: timeout}))
	var okN, rejN, errN atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wi := &work[i%len(work)]
			_, err := c.LabelData(context.Background(), wi.data, wi.ctype, api.Params{})
			switch {
			case err == nil:
				okN.Add(1)
			case isShed(err):
				rejN.Add(1)
			default:
				errN.Add(1)
			}
		}(i)
	}
	wg.Wait()
	return int(okN.Load()), int(rejN.Load()), int(errN.Load())
}

func isShed(err error) bool {
	var se *client.StatusError
	if !asStatus(err, &se) {
		return false
	}
	return se.Code == http.StatusTooManyRequests || se.Code == http.StatusServiceUnavailable
}

func isDeadline(err error) bool {
	var se *client.StatusError
	if asStatus(err, &se) && se.Code == http.StatusGatewayTimeout {
		return true
	}
	return err == context.DeadlineExceeded || strings.Contains(err.Error(), "context deadline exceeded")
}

func asStatus(err error, se **client.StatusError) bool {
	for err != nil {
		if s, ok := err.(*client.StatusError); ok {
			*se = s
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// waitDrained polls slapfront's /healthz until every backend's
// outstanding gauge is zero (or the wait expires).
func waitDrained(frontURL string, wait time.Duration) bool {
	deadline := time.Now().Add(wait)
	for {
		if outstandingSum(frontURL) == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func outstandingSum(frontURL string) int {
	resp, err := http.Get(frontURL + "/healthz")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	var snap struct {
		Backends []struct {
			Outstanding int `json:"outstanding"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return -1
	}
	sum := 0
	for _, b := range snap.Backends {
		sum += b.Outstanding
	}
	return sum
}

// scrapeCounters pulls the robustness counters out of the live
// /metrics text — the same numbers an operator's dashboard would show.
func scrapeCounters(frontURL string, rep *report) {
	resp, err := http.Get(frontURL + "/metrics")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return
	}
	grab := func(name string) int64 {
		for _, line := range strings.Split(string(body), "\n") {
			if v, ok := strings.CutPrefix(line, name+" "); ok {
				n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
				if err == nil {
					return n
				}
			}
		}
		return 0
	}
	rep.Counters.Retries = grab("slapfront_job_retries_total")
	rep.Counters.Fallbacks = grab("slapfront_local_fallbacks_total")
	rep.Counters.BreakerOpens = grab("slapfront_breaker_opened_total")
	rep.Counters.Hedges = grab("slapfront_hedges_total")
	rep.Counters.HedgeWins = grab("slapfront_hedge_wins_total")
}

func fillLatency(rep *report, lats []time.Duration) {
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pct := func(p float64) time.Duration { return lats[int(p*float64(len(lats)-1))] }
	var sum time.Duration
	for _, d := range lats {
		sum += d
	}
	rep.LatencyMS.P50 = ms(pct(0.50))
	rep.LatencyMS.P95 = ms(pct(0.95))
	rep.LatencyMS.P99 = ms(pct(0.99))
	rep.LatencyMS.Mean = ms(sum / time.Duration(len(lats)))
	rep.LatencyMS.Max = ms(lats[len(lats)-1])
}

func summarize(out io.Writer, rep *report) {
	fmt.Fprintf(out, "soak: %d requests in %.1fs over %d clients, %d mismatches\n",
		rep.Requests, rep.DurationS, rep.Concurrency, rep.Mismatches)
	fmt.Fprintf(out, "errors: %d shed (429/503), %d deadline (504), %d unexplained\n",
		rep.Errors.Shed, rep.Errors.Deadline, rep.Errors.Unexplained)
	fmt.Fprintf(out, "latency: p50 %.1fms  p95 %.1fms  p99 %.1fms  max %.1fms\n",
		rep.LatencyMS.P50, rep.LatencyMS.P95, rep.LatencyMS.P99, rep.LatencyMS.Max)
	if rep.Bursts.Fired > 0 {
		fmt.Fprintf(out, "bursts: %d fired -> %d ok, %d shed, %d errors\n",
			rep.Bursts.Fired, rep.Bursts.OK, rep.Bursts.Rejected429, rep.Bursts.Errors)
	}
	fmt.Fprintf(out, "counters: %d retries, %d fallbacks, %d breaker opens, %d hedges (%d wins)\n",
		rep.Counters.Retries, rep.Counters.Fallbacks, rep.Counters.BreakerOpens,
		rep.Counters.Hedges, rep.Counters.HedgeWins)
	fmt.Fprintf(out, "traces: %d audited, %d breaches\n", rep.Trace.Checked, rep.Trace.Breaches)
	fmt.Fprintf(out, "drained: %v\n", rep.OutstandingDrained)
	if len(rep.SLOBreaches) == 0 {
		fmt.Fprintln(out, "SLO: all green")
	} else {
		for _, b := range rep.SLOBreaches {
			fmt.Fprintf(out, "SLO BREACH: %s\n", b)
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
