// Command slapload is the closed-loop load generator for slapd: it
// drives a mixed corpus of frames (sizes × formats, PNG/PBM/art/raw)
// through the service from a fixed set of concurrent clients, verifies
// responses bit-for-bit against the in-process labeler, and reports
// service-level numbers — p50/p95/p99 latency, frames/s, MB/s — as both
// a human summary and a BENCH_*.json-style artifact.
//
// Usage:
//
//	slapd -addr :8117 &
//	slapload -url http://localhost:8117 -frames 1000 -concurrency 4 \
//	         -sizes 64,128,256 -formats png,pbm,raw -out BENCH_pr4.json
//
// With -cluster the target is a slapfront coordinator: the same loop
// and aggregate spot-checks run (strip-mined frames then fan out
// across the fleet and must still verify bit-for-bit — kill a backend
// mid-run to watch the coordinator re-shard), and the batch phase is
// skipped.
//
// Phases:
//
//  1. warmup (a few frames, uncounted);
//  2. the closed loop: -frames single-frame requests over -concurrency
//     workers, retrying on 429 through the client's backoff, verifying
//     labels and simulated metrics when -verify is on (every 4th
//     request strip-mines on a -array-wide machine when given, pinning
//     the service against in-process LabelLarge);
//  3. -batches multipart batches of -batchsize frames, checked for
//     in-order, bit-identical results (skipped with -cluster: the
//     slapfront coordinator does not expose /v1/label/batch);
//  4. aggregate spot-checks (unless -aggverify=false): /v1/aggregate
//     requests — whole-image and, when -array is set, strip-mined with
//     array= — verified value-for-value against the in-process
//     Aggregate/AggregateLarge;
//  5. an optional -overload burst fired without retry to observe the
//     admission queue shedding with 429.
//
// -cost stamps cost= on every request (unit, bitserial, or host — the
// host engine answers without simulation, so responses carry no
// simulated metrics). -verifyengine selects which engine builds the
// verification references: it defaults to matching -cost, and
// -verifyengine host makes reference building ~free (the word-parallel
// host labeler produces the same labels and folds as the simulator).
// When the engines differ, labels and folds still verify bit-for-bit
// but simulated-time comparisons are skipped. Reference-build and
// response-check time are reported as their own JSON stats, so the
// loop's frames/s stays a pure service number.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"slapcc"
	"slapcc/api"
	"slapcc/client"
	"slapcc/internal/benchfmt"
	"slapcc/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "slapload:", err)
		os.Exit(1)
	}
}

// spec is one pre-encoded request the loop can fire repeatedly.
type spec struct {
	name       string
	data       []byte
	ctype      string
	params     api.Params
	pixels     int64
	wantLabels []int32 // nil when verification is off
	wantTime   int64   // expected simulated makespan under params
	w, h       int
}

// report is the JSON artifact.
type report struct {
	Target      string   `json:"target"`
	Frames      int      `json:"frames"`
	Concurrency int      `json:"concurrency"`
	Sizes       []int    `json:"sizes"`
	Formats     []string `json:"formats"`
	ArrayWidth  int      `json:"array_width,omitempty"`
	Cluster     bool     `json:"cluster,omitempty"`
	DurationS   float64  `json:"duration_s"`
	FramesPerS  float64  `json:"frames_per_s"`
	MBPerS      float64  `json:"mb_per_s"`
	PixelMBPerS float64  `json:"pixel_mb_per_s"`
	BytesSent   int64    `json:"bytes_sent"`
	LatencyMS   struct {
		P50  float64 `json:"p50"`
		P95  float64 `json:"p95"`
		P99  float64 `json:"p99"`
		Mean float64 `json:"mean"`
		Max  float64 `json:"max"`
	} `json:"latency_ms"`
	Errors     int    `json:"errors"`
	Retried429 int64  `json:"retried_429"`
	Cost       string `json:"cost,omitempty"`
	// ServerStages breaks the server's own wall time down by stage, from
	// the Server-Timing headers the service emits: where p99 actually
	// went (queue? decode? label?) rather than one opaque latency number.
	ServerStages map[string]stagePct `json:"server_stages,omitempty"`
	Verify       struct {
		Enabled bool `json:"enabled"`
		// Engine is what built the references: "sim" re-runs the
		// simulator per corpus frame, "host" uses the host engine (same
		// labels, no simulation — reference building becomes ~free).
		Engine     string `json:"engine,omitempty"`
		Frames     int    `json:"frames"`
		Mismatches int    `json:"mismatches"`
		// BuildRefS is the time spent precomputing references before the
		// loop; CheckS is the cumulative time comparing responses inside
		// it. Both used to hide in corpus-build wall time and loop
		// throughput; reporting them separately keeps the loop's frames/s
		// an honest service number.
		BuildRefS float64 `json:"build_ref_s"`
		CheckS    float64 `json:"check_s"`
	} `json:"verify"`
	Batch struct {
		Batches    int `json:"batches"`
		Frames     int `json:"frames"`
		Errors     int `json:"errors"`
		Mismatches int `json:"mismatches"`
	} `json:"batch"`
	Aggregate struct {
		Checks     int `json:"checks"`
		Strip      int `json:"strip_mined"`
		Errors     int `json:"errors"`
		Mismatches int `json:"mismatches"`
	} `json:"aggregate"`
	Overload struct {
		Requests    int `json:"requests"`
		OK          int `json:"ok"`
		Rejected429 int `json:"rejected_429"`
		Errors      int `json:"errors"`
	} `json:"overload"`
}

// stagePct is one server-side stage's latency distribution in ms.
type stagePct struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	N   int     `json:"n"`
}

// counting429 counts 429 responses passing through the transport, so
// the report shows how often the admission queue pushed back even when
// retries eventually succeeded.
type counting429 struct {
	rt http.RoundTripper
	n  atomic.Int64
}

func (c *counting429) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := c.rt.RoundTrip(req)
	if err == nil && resp.StatusCode == http.StatusTooManyRequests {
		c.n.Add(1)
	}
	return resp, err
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("slapload", flag.ContinueOnError)
	var (
		url      = fs.String("url", "", "slapd base URL (required), e.g. http://localhost:8117")
		frames   = fs.Int("frames", 1000, "single-frame requests in the closed loop")
		conc     = fs.Int("concurrency", 4, "concurrent closed-loop clients")
		sizes    = fs.String("sizes", "64,128,256", "comma-separated square frame sizes")
		formats  = fs.String("formats", "png,pbm,raw", "comma-separated wire formats to mix")
		density  = fs.Float64("density", 0.5, "foreground density of generated frames")
		corpus   = fs.Int("corpus", 4, "distinct frames generated per size")
		verify   = fs.Bool("verify", true, "verify every response bit-for-bit against the in-process labeler")
		verifyEn = fs.String("verifyengine", "", "engine that builds verification references: sim (default; re-simulates every corpus frame) or host (host engine, ~free)")
		cost     = fs.String("cost", "", "cost= stamped on every request: unit (default), bitserial, or host (host engine: no simulated metrics in responses)")
		array    = fs.Int("array", 0, "strip-mine every 4th request on an array this wide (0 = never)")
		batches  = fs.Int("batches", 8, "multipart batch requests after the loop (0 = skip)")
		batchSz  = fs.Int("batchsize", 8, "frames per batch request")
		aggVer   = fs.Bool("aggverify", true, "spot-check /v1/aggregate (incl. strip-mined array= runs) against in-process AggregateLarge; needs -verify")
		clusterT = fs.Bool("cluster", false, "target is a slapfront coordinator: skip the batch phase (no /v1/label/batch there)")
		overload = fs.Int("overload", 0, "fire this many concurrent no-retry requests to observe 429s (0 = skip)")
		outPath  = fs.String("out", "", "write the JSON report here as well as stdout")
		benchOut = fs.String("benchout", "", "also write the run as a typed slap-bench/v1 BENCH file (see internal/benchfmt), keyed under -benchprefix")
		benchPre = fs.String("benchprefix", "steady", "canonical metric prefix for -benchout (matches slapsweet's scenario names)")
		timeout  = fs.Duration("timeout", 120*time.Second, "per-request timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		return fmt.Errorf("need -url (start one with: slapd -addr :8117)")
	}
	sizeList, err := parseInts(*sizes)
	if err != nil {
		return fmt.Errorf("bad -sizes: %w", err)
	}
	formatList := strings.Split(*formats, ",")

	// Which engine answers requests (via cost=) and which builds the
	// references. They default to matching, so simulated-time checks
	// stay meaningful; when they differ — e.g. -verifyengine host
	// against a bitserial service — labels and folds still verify
	// bit-for-bit but the TimeSteps comparison is skipped, since only
	// the simulator has simulated time.
	reqEngine := slapcc.EngineSim
	switch strings.ToLower(*cost) {
	case "", "unit", "bitserial":
	case "host":
		reqEngine = slapcc.EngineHost
	default:
		return fmt.Errorf("bad -cost %q (want unit, bitserial, or host)", *cost)
	}
	refEngine := reqEngine
	switch strings.ToLower(*verifyEn) {
	case "":
	case "sim":
		refEngine = slapcc.EngineSim
	case "host":
		refEngine = slapcc.EngineHost
	default:
		return fmt.Errorf("bad -verifyengine %q (want sim or host)", *verifyEn)
	}
	checkTime := refEngine == reqEngine

	specs, refDur, err := buildCorpus(sizeList, formatList, *density, *corpus, *verify, *array, *cost, refEngine, checkTime)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "corpus: %d specs (%d sizes x %d formats x %d frames)\n",
		len(specs), len(sizeList), len(formatList), *corpus)

	counter := &counting429{rt: http.DefaultTransport.(*http.Transport).Clone()}
	hc := &http.Client{Transport: counter, Timeout: *timeout}
	c := client.New(*url, client.WithHTTPClient(hc), client.WithMaxRetries(8), client.WithMaxRetryWait(2*time.Second))
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		return fmt.Errorf("target not healthy: %w", err)
	}

	rep := &report{
		Target: *url, Frames: *frames, Concurrency: *conc,
		Sizes: sizeList, Formats: formatList, ArrayWidth: *array,
		Cluster: *clusterT, Cost: *cost,
	}
	rep.Verify.Enabled = *verify
	if *verify {
		rep.Verify.Engine = string(refEngine)
		rep.Verify.BuildRefS = refDur.Seconds()
	}

	// Warmup, uncounted: fill connection pools and the server's arenas.
	for i := 0; i < min(*conc, len(specs)); i++ {
		if _, err := c.LabelData(ctx, specs[i].data, specs[i].ctype, specs[i].params); err != nil {
			return fmt.Errorf("warmup: %w", err)
		}
	}

	// Phase 2: the closed loop.
	var (
		next       atomic.Int64
		errs       atomic.Int64
		mismatches atomic.Int64
		bytesSent  atomic.Int64
		pixels     atomic.Int64
		checkNanos atomic.Int64
		mu         sync.Mutex
		lats       []time.Duration
		stageLats  = map[string][]time.Duration{}
		firstErr   atomic.Value
	)
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < *conc; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, *frames / *conc + 1)
			localStages := map[string][]time.Duration{}
			for {
				i := int(next.Add(1)) - 1
				if i >= *frames {
					break
				}
				sp := &specs[i%len(specs)]
				// Each request carries a trace so the client grafts the
				// server's Server-Timing breakdown under it; the top-level
				// grafted spans are the server's own stages.
				tr := obs.New("", sp.name, nil)
				t0 := time.Now()
				resp, err := c.LabelData(obs.ContextWith(ctx, tr.Root()), sp.data, sp.ctype, sp.params)
				d := time.Since(t0)
				tr.Finish()
				if err != nil {
					errs.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("%s: %w", sp.name, err))
					continue
				}
				for _, st := range tr.Stages() {
					localStages[st.Name] = append(localStages[st.Name], st.Dur)
				}
				local = append(local, d)
				bytesSent.Add(int64(len(sp.data)))
				pixels.Add(sp.pixels)
				if sp.wantLabels != nil {
					v0 := time.Now()
					ok := checkResponse(resp, sp)
					checkNanos.Add(int64(time.Since(v0)))
					if !ok {
						mismatches.Add(1)
					}
				}
			}
			mu.Lock()
			lats = append(lats, local...)
			for name, ds := range localStages {
				stageLats[name] = append(stageLats[name], ds...)
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep.DurationS = elapsed.Seconds()
	rep.Errors = int(errs.Load())
	rep.Retried429 = counter.n.Load()
	rep.BytesSent = bytesSent.Load()
	rep.FramesPerS = float64(len(lats)) / elapsed.Seconds()
	rep.MBPerS = float64(bytesSent.Load()) / 1e6 / elapsed.Seconds()
	rep.PixelMBPerS = float64(pixels.Load()) / 1e6 / elapsed.Seconds()
	fillLatency(rep, lats)
	fillServerStages(rep, stageLats)
	if *verify {
		rep.Verify.Frames = len(lats)
		rep.Verify.Mismatches = int(mismatches.Load())
		rep.Verify.CheckS = time.Duration(checkNanos.Load()).Seconds()
	}

	// Phase 3: batches, verified in order. A slapfront target has no
	// batch endpoint — single frames are the unit it shards.
	if *batches > 0 && *batchSz > 0 && !*clusterT {
		if err := runBatches(ctx, c, specs, *batches, *batchSz, *cost, rep); err != nil {
			return err
		}
	}

	// Phase 4: aggregate spot-checks against in-process AggregateLarge.
	if *aggVer && *verify {
		if err := runAggChecks(ctx, c, sizeList, *density, *array, *cost, refEngine, checkTime, rep); err != nil {
			return err
		}
	}

	// Phase 5: the over-capacity burst, no retries.
	if *overload > 0 {
		runOverload(ctx, *url, specs, *overload, *timeout, rep)
	}

	summarize(out, rep)
	if e, ok := firstErr.Load().(error); ok && e != nil {
		fmt.Fprintf(out, "first error: %v\n", e)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "report written to %s\n", *outPath)
	}
	if *benchOut != "" {
		if err := benchFile(rep, *benchPre).Write(*benchOut); err != nil {
			return fmt.Errorf("writing -benchout: %w", err)
		}
		fmt.Fprintf(out, "BENCH file written to %s\n", *benchOut)
	}
	if rep.Errors > 0 || rep.Verify.Mismatches > 0 || rep.Batch.Mismatches > 0 || rep.Batch.Errors > 0 ||
		rep.Aggregate.Errors > 0 || rep.Aggregate.Mismatches > 0 {
		return fmt.Errorf("%d errors, %d verify mismatches, %d batch errors, %d batch mismatches, %d aggregate errors, %d aggregate mismatches",
			rep.Errors, rep.Verify.Mismatches, rep.Batch.Errors, rep.Batch.Mismatches,
			rep.Aggregate.Errors, rep.Aggregate.Mismatches)
	}
	return nil
}

// runAggChecks drives /v1/aggregate — one whole-image and, when the
// image is wider than -array, one strip-mined request per size — and
// verifies the per-pixel folds, labels, and composed simulated time
// value-for-value against the in-process Aggregate/AggregateLarge. The
// strip-mined rows also exercise the pipelined schedule model, whose
// composed time the service must reproduce exactly.
func runAggChecks(ctx context.Context, c *client.Client, sizes []int, density float64, array int, cost string, refEngine slapcc.Engine, checkTime bool, rep *report) error {
	for _, n := range sizes {
		img := slapcc.RandomImage(n, density, uint64(n)*0xA99)
		type check struct {
			name string
			opt  slapcc.Options
			p    api.Params
		}
		checks := []check{{name: fmt.Sprintf("agg-%d", n), p: api.Params{Op: "sum", WantLabels: true}}}
		if array > 0 && array < n {
			checks = append(checks,
				check{
					name: fmt.Sprintf("agg-%d-aw%d", n, array),
					opt:  slapcc.Options{ArrayWidth: array},
					p:    api.Params{Op: "sum", ArrayWidth: array, WantLabels: true},
				},
				check{
					name: fmt.Sprintf("agg-%d-aw%d-pipelined", n, array),
					opt:  slapcc.Options{ArrayWidth: array, Schedule: slapcc.SchedulePipelined},
					p:    api.Params{Op: "sum", ArrayWidth: array, Schedule: "pipelined", WantLabels: true},
				})
		}
		for _, ck := range checks {
			ck.opt.Engine = refEngine
			ck.p.Cost = cost
			want, err := slapcc.AggregateLarge(img, slapcc.OnesOf(img), slapcc.SumOf(), ck.opt)
			if err != nil {
				return fmt.Errorf("%s: in-process reference: %w", ck.name, err)
			}
			rep.Aggregate.Checks++
			if ck.p.ArrayWidth > 0 {
				rep.Aggregate.Strip++
			}
			resp, err := c.Aggregate(ctx, img, ck.p)
			if err != nil {
				rep.Aggregate.Errors++
				continue
			}
			if !aggMatches(resp, want, checkTime) {
				rep.Aggregate.Mismatches++
			}
		}
	}
	return nil
}

// aggMatches compares an aggregate response against the in-process
// reference; checkTime is off when the reference engine differs from
// the one that served the request (only the simulator has TimeSteps).
func aggMatches(resp *api.AggregateResponse, want *slapcc.AggregateResult, checkTime bool) bool {
	if checkTime && resp.Metrics.TimeSteps != want.Metrics.Time {
		return false
	}
	if len(resp.PerPixel) != len(want.PerPixel) {
		return false
	}
	for i, v := range want.PerPixel {
		if resp.PerPixel[i] != v {
			return false
		}
	}
	lm := want.Labels
	if len(resp.Labels) != lm.W()*lm.H() {
		return false
	}
	for x := 0; x < lm.W(); x++ {
		for y := 0; y < lm.H(); y++ {
			if resp.Labels[x*lm.H()+y] != lm.Get(x, y) {
				return false
			}
		}
	}
	return true
}

// buildCorpus generates the frame corpus and pre-computes the expected
// results the verification phases compare against; refEngine selects
// which engine builds the references, and refDur reports the time that
// took. wantTime is −1 (skip the TimeSteps comparison) when the
// reference engine differs from the one serving the requests.
func buildCorpus(sizes []int, formats []string, density float64, perSize int, verify bool, array int, cost string, refEngine slapcc.Engine, checkTime bool) ([]spec, time.Duration, error) {
	var specs []spec
	var refDur time.Duration
	seed := uint64(1)
	for _, n := range sizes {
		for k := 0; k < perSize; k++ {
			img := slapcc.RandomImage(n, density, seed)
			seed++
			var wantWhole, wantStrip []int32
			timeWhole, timeStrip := int64(-1), int64(-1)
			if verify {
				r0 := time.Now()
				res, err := slapcc.LabelWithOptions(img, slapcc.Options{Engine: refEngine})
				if err != nil {
					return nil, 0, err
				}
				wantWhole = flatten(res.Labels)
				if checkTime {
					timeWhole = res.Metrics.Time
				}
				if array > 0 && array < n {
					sres, err := slapcc.LabelLarge(img, slapcc.Options{ArrayWidth: array, Engine: refEngine})
					if err != nil {
						return nil, 0, err
					}
					wantStrip = flatten(sres.Labels)
					if checkTime {
						timeStrip = sres.Metrics.Time
					}
				}
				refDur += time.Since(r0)
			}
			for _, format := range formats {
				data, ctype, err := client.EncodeImage(img, strings.TrimSpace(format))
				if err != nil {
					return nil, 0, err
				}
				sp := spec{
					name:   fmt.Sprintf("%s-%d-%d", strings.TrimSpace(format), n, k),
					data:   data,
					ctype:  ctype,
					pixels: int64(n) * int64(n),
					w:      img.W(), h: img.H(),
					wantLabels: wantWhole,
					wantTime:   timeWhole,
				}
				sp.params.Cost = cost
				if verify {
					sp.params.WantLabels = true
				}
				// Every 4th spec strip-mines, pinning the service against
				// in-process LabelLarge.
				if array > 0 && array < n && len(specs)%4 == 3 {
					sp.params.ArrayWidth = array
					sp.name += fmt.Sprintf("-aw%d", array)
					sp.wantLabels = wantStrip
					sp.wantTime = timeStrip
				}
				specs = append(specs, sp)
			}
		}
	}
	if len(specs) == 0 {
		return nil, 0, fmt.Errorf("empty corpus (sizes %v, formats %v)", sizes, formats)
	}
	return specs, refDur, nil
}

// checkResponse compares a response against the precomputed truth. A
// wantTime of −1 skips the simulated-time comparison (the reference was
// built by a different engine than served the request).
func checkResponse(resp *api.LabelResponse, sp *spec) bool {
	if resp.Width != sp.w || resp.Height != sp.h {
		return false
	}
	if sp.wantTime >= 0 && resp.Metrics.TimeSteps != sp.wantTime {
		return false
	}
	if len(resp.Labels) != len(sp.wantLabels) {
		return false
	}
	for i := range sp.wantLabels {
		if resp.Labels[i] != sp.wantLabels[i] {
			return false
		}
	}
	return true
}

func runBatches(ctx context.Context, c *client.Client, specs []spec, batches, batchSz int, cost string, rep *report) error {
	idx := 0
	for b := 0; b < batches; b++ {
		var frames []client.Frame
		var members []*spec
		for k := 0; k < batchSz; k++ {
			sp := &specs[idx%len(specs)]
			idx++
			// Batch params are request-wide; skip strip-mined specs whose
			// per-frame params would not apply.
			if sp.params.ArrayWidth != 0 {
				sp = &specs[0]
			}
			frames = append(frames, client.Frame{Data: sp.data, ContentType: sp.ctype})
			members = append(members, sp)
		}
		resp, err := c.LabelBatch(ctx, frames, api.Params{WantLabels: members[0].wantLabels != nil, Cost: cost})
		if err != nil {
			return fmt.Errorf("batch %d: %w", b, err)
		}
		rep.Batch.Batches++
		rep.Batch.Frames += resp.Frames
		rep.Batch.Errors += resp.Errors
		for i, item := range resp.Results {
			if item.Index != i {
				rep.Batch.Mismatches++
				continue
			}
			if item.Result == nil {
				continue // already counted in Errors
			}
			if members[i].wantLabels != nil && !checkResponse(item.Result, members[i]) {
				rep.Batch.Mismatches++
			}
		}
	}
	return nil
}

// runOverload fires burst concurrent requests with no retrying and
// tallies how the admission queue answered.
func runOverload(ctx context.Context, url string, specs []spec, burst int, timeout time.Duration, rep *report) {
	c := client.New(url, client.WithMaxRetries(0), client.WithHTTPClient(&http.Client{Timeout: timeout}))
	var ok, rejected, errs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := &specs[i%len(specs)]
			_, err := c.LabelData(ctx, sp.data, sp.ctype, api.Params{})
			switch e := err.(type) {
			case nil:
				ok.Add(1)
			case *client.StatusError:
				if e.IsRetryable() {
					rejected.Add(1)
				} else {
					errs.Add(1)
				}
			default:
				errs.Add(1)
			}
		}(i)
	}
	wg.Wait()
	rep.Overload.Requests = burst
	rep.Overload.OK = int(ok.Load())
	rep.Overload.Rejected429 = int(rejected.Load())
	rep.Overload.Errors = int(errs.Load())
}

func fillLatency(rep *report, lats []time.Duration) {
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	var sum time.Duration
	for _, d := range lats {
		sum += d
	}
	rep.LatencyMS.P50 = ms(pct(0.50))
	rep.LatencyMS.P95 = ms(pct(0.95))
	rep.LatencyMS.P99 = ms(pct(0.99))
	rep.LatencyMS.Mean = ms(sum / time.Duration(len(lats)))
	rep.LatencyMS.Max = ms(lats[len(lats)-1])
}

// fillServerStages computes per-stage percentiles from the grafted
// Server-Timing breakdowns.
func fillServerStages(rep *report, stageLats map[string][]time.Duration) {
	if len(stageLats) == 0 {
		return
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	rep.ServerStages = make(map[string]stagePct, len(stageLats))
	for name, ds := range stageLats {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		pct := func(p float64) time.Duration { return ds[int(p*float64(len(ds)-1))] }
		rep.ServerStages[name] = stagePct{
			P50: ms(pct(0.50)), P95: ms(pct(0.95)), P99: ms(pct(0.99)), N: len(ds),
		}
	}
}

func summarize(out io.Writer, rep *report) {
	fmt.Fprintf(out, "loop: %d frames in %.2fs over %d clients -> %.1f frames/s, %.2f MB/s wire, %.2f Mpix/s\n",
		rep.Frames-rep.Errors, rep.DurationS, rep.Concurrency, rep.FramesPerS, rep.MBPerS, rep.PixelMBPerS)
	fmt.Fprintf(out, "latency: p50 %.2fms  p95 %.2fms  p99 %.2fms  mean %.2fms  max %.2fms\n",
		rep.LatencyMS.P50, rep.LatencyMS.P95, rep.LatencyMS.P99, rep.LatencyMS.Mean, rep.LatencyMS.Max)
	fmt.Fprintf(out, "errors: %d   429-retries absorbed: %d\n", rep.Errors, rep.Retried429)
	if len(rep.ServerStages) > 0 {
		names := make([]string, 0, len(rep.ServerStages))
		for name := range rep.ServerStages {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			st := rep.ServerStages[name]
			fmt.Fprintf(out, "server stage %-8s p50 %.2fms  p95 %.2fms  p99 %.2fms  (%d samples)\n",
				name+":", st.P50, st.P95, st.P99, st.N)
		}
	}
	if rep.Verify.Enabled {
		fmt.Fprintf(out, "verify: %d frames checked (engine %s), %d mismatches; refs built in %.3fs, response checks %.3fs\n",
			rep.Verify.Frames, rep.Verify.Engine, rep.Verify.Mismatches, rep.Verify.BuildRefS, rep.Verify.CheckS)
	}
	if rep.Batch.Batches > 0 {
		fmt.Fprintf(out, "batch: %d batches / %d frames, %d errors, %d mismatches\n",
			rep.Batch.Batches, rep.Batch.Frames, rep.Batch.Errors, rep.Batch.Mismatches)
	}
	if rep.Aggregate.Checks > 0 {
		fmt.Fprintf(out, "aggregate: %d checks (%d strip-mined), %d errors, %d mismatches\n",
			rep.Aggregate.Checks, rep.Aggregate.Strip, rep.Aggregate.Errors, rep.Aggregate.Mismatches)
	}
	if rep.Overload.Requests > 0 {
		fmt.Fprintf(out, "overload: %d fired -> %d ok, %d shed with 429, %d errors\n",
			rep.Overload.Requests, rep.Overload.OK, rep.Overload.Rejected429, rep.Overload.Errors)
	}
}

func flatten(lm *slapcc.LabelMap) []int32 {
	out := make([]int32, 0, lm.W()*lm.H())
	for x := 0; x < lm.W(); x++ {
		out = append(out, lm.ColumnSlice(x)...)
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// benchFile converts the report into the typed slap-bench/v1 artifact,
// using the same canonical metric names slapsweet's service scenarios
// emit — so a slapload run against a remote daemon diffs cleanly
// against the committed trajectory.
func benchFile(rep *report, prefix string) *benchfmt.File {
	rt := obs.Runtime()
	f := &benchfmt.File{
		Schema: benchfmt.SchemaV1,
		Title:  "slapload " + rep.Target,
		Date:   time.Now().UTC().Format("2006-01-02"),
		Runner: benchfmt.Runner{CPU: rt.CPU, Cores: rt.Cores, GOMAXPROCS: rt.GOMAXPROCS, GoVersion: rt.GoVersion},
		Protocol: fmt.Sprintf("cmd/slapload: %d frames, %d clients, sizes %v, formats %v, cost=%q",
			rep.Frames, rep.Concurrency, rep.Sizes, rep.Formats, rep.Cost),
		Results: []benchfmt.Result{
			{Name: prefix + "/frames_per_s", Unit: "frames/s", Better: benchfmt.HigherIsBetter, Value: rep.FramesPerS},
			{Name: prefix + "/wire_mb_per_s", Unit: "MB/s", Better: benchfmt.HigherIsBetter, Value: rep.MBPerS},
			{Name: prefix + "/pixel_mb_per_s", Unit: "MB/s", Better: benchfmt.HigherIsBetter, Value: rep.PixelMBPerS},
			{Name: prefix + "/latency_p50_ms", Unit: "ms", Value: rep.LatencyMS.P50},
			{Name: prefix + "/latency_p95_ms", Unit: "ms", Value: rep.LatencyMS.P95},
			{Name: prefix + "/latency_p99_ms", Unit: "ms", Value: rep.LatencyMS.P99},
		},
	}
	names := make([]string, 0, len(rep.ServerStages))
	for name := range rep.ServerStages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f.Results = append(f.Results, benchfmt.Result{
			Name: prefix + "/stage/" + name + "_p95_ms", Unit: "ms", Value: rep.ServerStages[name].P95,
		})
	}
	if rep.Overload.Requests > 0 {
		f.Results = append(f.Results,
			benchfmt.Result{Name: "overload/requests", Unit: "count", Value: float64(rep.Overload.Requests)},
			benchfmt.Result{Name: "overload/ok", Unit: "count", Value: float64(rep.Overload.OK)},
			benchfmt.Result{Name: "overload/rejected_429", Unit: "count", Value: float64(rep.Overload.Rejected429)},
		)
	}
	return f
}
