package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"slapcc/internal/cluster"
	"slapcc/internal/server"
)

// TestLoadAgainstRealServer is the acceptance loop in miniature: a
// mixed-size, mixed-format corpus through a real server handler with
// full verification, ordered batches, and an over-capacity burst, all
// reported into the JSON artifact.
func TestLoadAgainstRealServer(t *testing.T) {
	hs := httptest.NewServer(server.New(server.Config{Workers: 2, QueueDepth: 2}))
	defer hs.Close()

	outPath := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	err := run([]string{
		"-url", hs.URL,
		"-frames", "24", "-concurrency", "3",
		"-sizes", "16,24", "-corpus", "2",
		"-formats", "png,pbm,raw,art",
		"-array", "8",
		"-batches", "2", "-batchsize", "4",
		"-overload", "12",
		"-out", outPath,
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}

	blob, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("bad report: %v\n%s", err, blob)
	}
	if rep.Errors != 0 || rep.Verify.Mismatches != 0 {
		t.Fatalf("errors %d, mismatches %d", rep.Errors, rep.Verify.Mismatches)
	}
	if !rep.Verify.Enabled || rep.Verify.Frames != 24 {
		t.Fatalf("verify: %+v", rep.Verify)
	}
	if rep.Batch.Batches != 2 || rep.Batch.Frames != 8 || rep.Batch.Errors != 0 || rep.Batch.Mismatches != 0 {
		t.Fatalf("batch: %+v", rep.Batch)
	}
	// Two sizes × (whole + strip-mined + strip-mined-pipelined): the
	// aggregate spot-checks must all verify against AggregateLarge.
	if rep.Aggregate.Checks != 6 || rep.Aggregate.Strip != 4 ||
		rep.Aggregate.Errors != 0 || rep.Aggregate.Mismatches != 0 {
		t.Fatalf("aggregate: %+v", rep.Aggregate)
	}
	if rep.Overload.Requests != 12 || rep.Overload.OK+rep.Overload.Rejected429+rep.Overload.Errors != 12 || rep.Overload.Errors != 0 {
		t.Fatalf("overload: %+v", rep.Overload)
	}
	if rep.LatencyMS.P50 <= 0 || rep.LatencyMS.P99 < rep.LatencyMS.P50 {
		t.Fatalf("latency: %+v", rep.LatencyMS)
	}
	// The Server-Timing headers must break server time down by stage.
	for _, stage := range []string{"queue", "decode", "label", "encode"} {
		st, ok := rep.ServerStages[stage]
		if !ok || st.N == 0 {
			t.Fatalf("no server stage %q in report: %+v", stage, rep.ServerStages)
		}
		if st.P99 < st.P50 {
			t.Fatalf("stage %q percentiles inverted: %+v", stage, st)
		}
	}
	if rep.FramesPerS <= 0 || rep.MBPerS <= 0 {
		t.Fatalf("throughput: %+v", rep)
	}
	if !strings.Contains(out.String(), "latency: p50") {
		t.Fatalf("no summary:\n%s", out.String())
	}
}

// TestRunFlagErrors: a missing -url and malformed lists fail fast.
func TestRunFlagErrors(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "-url") {
		t.Fatalf("missing url: %v", err)
	}
	if err := run([]string{"-url", "http://x", "-sizes", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad sizes accepted")
	}
}

// TestLoadAgainstCluster drives the -cluster scenario end to end: two
// slapd backends behind a slapfront coordinator, one killed outright
// mid-corpus (its strips re-shard to the survivor), and every response
// — including the strip-mined frames that fan out across the fleet —
// still verifies bit-for-bit with zero errors.
func TestLoadAgainstCluster(t *testing.T) {
	b1 := httptest.NewServer(server.New(server.Config{Workers: 2}))
	defer b1.Close()
	b2 := httptest.NewServer(server.New(server.Config{Workers: 2}))
	co := cluster.New(cluster.Config{
		Backends:    []string{b1.URL, b2.URL},
		RetryBudget: 3,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	})
	defer co.Close()
	front := httptest.NewServer(co)
	defer front.Close()

	// Kill backend 2 while the loop runs: refused connections from the
	// first in-flight strip onward.
	killed := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		b2.CloseClientConnections()
		b2.Close()
		close(killed)
	}()

	outPath := filepath.Join(t.TempDir(), "bench-cluster.json")
	var out bytes.Buffer
	err := run([]string{
		"-url", front.URL,
		"-cluster",
		"-frames", "32", "-concurrency", "3",
		"-sizes", "16,24", "-corpus", "2",
		"-formats", "png,raw",
		"-array", "8",
		"-out", outPath,
	}, &out)
	<-killed
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}

	blob, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("bad report: %v\n%s", err, blob)
	}
	if !rep.Cluster {
		t.Fatalf("report not marked cluster: %+v", rep)
	}
	if rep.Errors != 0 || rep.Verify.Mismatches != 0 {
		t.Fatalf("cluster run with a killed backend: errors %d, mismatches %d\n%s", rep.Errors, rep.Verify.Mismatches, out.String())
	}
	if rep.Batch.Batches != 0 {
		t.Fatalf("batch phase ran against a coordinator: %+v", rep.Batch)
	}
	if rep.Aggregate.Checks == 0 || rep.Aggregate.Errors != 0 || rep.Aggregate.Mismatches != 0 {
		t.Fatalf("aggregate: %+v", rep.Aggregate)
	}
	// The coordinator's Server-Timing must survive the extra tier.
	if st, ok := rep.ServerStages["decode"]; !ok || st.N == 0 {
		t.Fatalf("no coordinator decode stage in report: %+v", rep.ServerStages)
	}
}
