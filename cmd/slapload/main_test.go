package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"slapcc/internal/server"
)

// TestLoadAgainstRealServer is the acceptance loop in miniature: a
// mixed-size, mixed-format corpus through a real server handler with
// full verification, ordered batches, and an over-capacity burst, all
// reported into the JSON artifact.
func TestLoadAgainstRealServer(t *testing.T) {
	hs := httptest.NewServer(server.New(server.Config{Workers: 2, QueueDepth: 2}))
	defer hs.Close()

	outPath := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	err := run([]string{
		"-url", hs.URL,
		"-frames", "24", "-concurrency", "3",
		"-sizes", "16,24", "-corpus", "2",
		"-formats", "png,pbm,raw,art",
		"-array", "8",
		"-batches", "2", "-batchsize", "4",
		"-overload", "12",
		"-out", outPath,
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}

	blob, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("bad report: %v\n%s", err, blob)
	}
	if rep.Errors != 0 || rep.Verify.Mismatches != 0 {
		t.Fatalf("errors %d, mismatches %d", rep.Errors, rep.Verify.Mismatches)
	}
	if !rep.Verify.Enabled || rep.Verify.Frames != 24 {
		t.Fatalf("verify: %+v", rep.Verify)
	}
	if rep.Batch.Batches != 2 || rep.Batch.Frames != 8 || rep.Batch.Errors != 0 || rep.Batch.Mismatches != 0 {
		t.Fatalf("batch: %+v", rep.Batch)
	}
	// Two sizes × (whole + strip-mined + strip-mined-pipelined): the
	// aggregate spot-checks must all verify against AggregateLarge.
	if rep.Aggregate.Checks != 6 || rep.Aggregate.Strip != 4 ||
		rep.Aggregate.Errors != 0 || rep.Aggregate.Mismatches != 0 {
		t.Fatalf("aggregate: %+v", rep.Aggregate)
	}
	if rep.Overload.Requests != 12 || rep.Overload.OK+rep.Overload.Rejected429+rep.Overload.Errors != 12 || rep.Overload.Errors != 0 {
		t.Fatalf("overload: %+v", rep.Overload)
	}
	if rep.LatencyMS.P50 <= 0 || rep.LatencyMS.P99 < rep.LatencyMS.P50 {
		t.Fatalf("latency: %+v", rep.LatencyMS)
	}
	if rep.FramesPerS <= 0 || rep.MBPerS <= 0 {
		t.Fatalf("throughput: %+v", rep)
	}
	if !strings.Contains(out.String(), "latency: p50") {
		t.Fatalf("no summary:\n%s", out.String())
	}
}

// TestRunFlagErrors: a missing -url and malformed lists fail fast.
func TestRunFlagErrors(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "-url") {
		t.Fatalf("missing url: %v", err)
	}
	if err := run([]string{"-url", "http://x", "-sizes", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad sizes accepted")
	}
}
