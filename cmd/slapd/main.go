// Command slapd serves connected-component labeling over HTTP: the
// production front end for the SLAP simulator's allocation-free core.
// Images (PNG, plain PBM, ASCII art, or the SLR1 raw wire format) are
// decoded under size limits, admitted through a bounded queue with 429
// backpressure, and labeled on a pool of warm arena-reusing labelers.
//
// Usage:
//
//	slapd -addr :8117 -workers 4 -queue 16
//	curl -s --data-binary @frame.png localhost:8117/v1/label | jq .components
//	curl -s localhost:8117/metrics
//
// SIGINT/SIGTERM drain gracefully: /healthz flips to 503 so load
// balancers stop routing, in-flight requests finish, then the process
// exits. See the api package for the wire contract and cmd/slapload for
// the matching load generator.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"slapcc/internal/imageio"
	"slapcc/internal/obs"
	"slapcc/internal/server"
)

func main() {
	signals := make(chan os.Signal, 1)
	signal.Notify(signals, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, signals, nil); err != nil {
		fmt.Fprintln(os.Stderr, "slapd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a signal arrives, then drains.
// ready (optional) receives the bound address once the listener is up —
// the test hook, and handy for scripts using -addr :0.
func run(args []string, out io.Writer, signals <-chan os.Signal, ready func(addr string)) error {
	fs := flag.NewFlagSet("slapd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8117", "listen address (host:port; :0 picks a free port)")
		workers   = fs.Int("workers", 0, "labeler pool size (0 = GOMAXPROCS)")
		queue     = fs.Int("queue", 0, "admitted requests allowed to wait beyond the workers (0 = 2x workers)")
		maxW      = fs.Int("maxwidth", 0, "max image width (0 = default)")
		maxH      = fs.Int("maxheight", 0, "max image height (0 = default)")
		maxPix    = fs.Int64("maxpixels", 0, "max image pixels (0 = default)")
		maxBody   = fs.Int64("maxbody", 0, "max request body bytes (0 = 64 MiB)")
		maxBatch  = fs.Int("maxbatch", 0, "max frames per batch request (0 = 64)")
		retry     = fs.Duration("retryafter", time.Second, "Retry-After hint on 429 responses")
		verify    = fs.Bool("verify", false, "cross-check every labeling against the sequential reference (conformance mode)")
		drainWait = fs.Duration("draintimeout", 30*time.Second, "how long shutdown waits for in-flight requests")
		debugAddr = fs.String("debugaddr", "", "private debug listener for pprof and /debug/requests (e.g. 127.0.0.1:6060; empty disables; keep it off public interfaces)")
		latTarget = fs.Duration("latencytarget", 0, "adaptive admission latency target (0 disables AIMD limiting)")

		readHeader = fs.Duration("readheadertimeout", 5*time.Second, "time allowed to read a request's headers")
		readWait   = fs.Duration("readtimeout", 2*time.Minute, "time allowed to read a whole request")
		writeWait  = fs.Duration("writetimeout", 2*time.Minute, "time allowed to write a response")
		idleWait   = fs.Duration("idletimeout", 2*time.Minute, "keep-alive idle connection timeout")
		maxHeader  = fs.Int("maxheaderbytes", 1<<20, "max request header bytes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		Limits:         imageio.Limits{MaxWidth: *maxW, MaxHeight: *maxH, MaxPixels: *maxPix},
		MaxBodyBytes:   *maxBody,
		MaxBatchFrames: *maxBatch,
		RetryAfter:     *retry,
		Verify:         *verify,
		LatencyTarget:  *latTarget,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(out, "slapd: "+format+"\n", args...)
		},
	}
	srv := server.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The timeouts harden the listener against slow-loris clients: a
	// connection that trickles its headers or body is cut off instead of
	// pinning a goroutine and an admission slot forever.
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: *readHeader,
		ReadTimeout:       *readWait,
		WriteTimeout:      *writeWait,
		IdleTimeout:       *idleWait,
		MaxHeaderBytes:    *maxHeader,
	}
	errc := make(chan error, 1)
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()
	fmt.Fprintf(out, "slapd: listening on %s (workers %d, admission %d)\n",
		ln.Addr(), srv.Workers(), srv.AdmissionCapacity())
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		dhs := &http.Server{Handler: obs.DebugMux(srv.DebugHandler()), ReadHeaderTimeout: *readHeader}
		defer dhs.Close()
		go dhs.Serve(dln)
		fmt.Fprintf(out, "slapd: debug listening on %s\n", dln.Addr())
	}
	if ready != nil {
		ready(ln.Addr().String())
	}

	select {
	case err := <-errc:
		return err
	case <-signals:
	}

	fmt.Fprintln(out, "slapd: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	fmt.Fprintln(out, "slapd: drained, bye")
	return nil
}
