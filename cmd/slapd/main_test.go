package main

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"slapcc"
	"slapcc/api"
	"slapcc/client"
)

// TestDaemonLifecycle boots the daemon on an ephemeral port, labels a
// PNG through the real client, then delivers the shutdown signal and
// watches it drain cleanly — the whole service loop in one test.
func TestDaemonLifecycle(t *testing.T) {
	signals := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-verify"},
			&out, signals, func(addr string) { ready <- addr })
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	c := client.New("http://" + addr)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	img := slapcc.RandomImage(32, 0.5, 42)
	want, err := slapcc.Label(img)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Label(ctx, img, api.Params{Format: "png", WantLabels: true})
	if err != nil {
		t.Fatalf("label: %v", err)
	}
	if resp.Components != want.Labels.ComponentCount() || resp.Metrics.TimeSteps != want.Metrics.Time {
		t.Fatalf("PNG labeling diverged: %+v", resp)
	}

	signals <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Fatalf("no drain log:\n%s", out.String())
	}
}

// TestSlowLorisDisconnected: a client that opens a connection and
// trickles an eternally unfinished header block is cut off by
// ReadHeaderTimeout instead of pinning a server goroutine — and the
// daemon keeps serving real traffic while the loris dangles.
func TestSlowLorisDisconnected(t *testing.T) {
	signals := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-readheadertimeout", "300ms"},
			&out, signals, func(addr string) { ready <- addr })
	}()
	t.Cleanup(func() {
		signals <- os.Interrupt
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("daemon did not drain after the test")
		}
	})

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A legitimate-looking start, then silence mid-header.
	if _, err := conn.Write([]byte("POST /v1/label HTTP/1.1\r\nHost: loris\r\nX-Drip: ")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server answered a half-sent header block")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server still holding the slow-loris connection after 5s; ReadHeaderTimeout not enforced")
	}

	// The daemon is unharmed: a real request still answers.
	c := client.New("http://" + addr)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz after loris: %v", err)
	}
}

// TestBadFlags: flag errors surface instead of starting a daemon.
func TestBadFlags(t *testing.T) {
	if err := run([]string{"-addr"}, &bytes.Buffer{}, nil, nil); err == nil {
		t.Fatal("dangling -addr accepted")
	}
	if err := run([]string{"-addr", "definitely:not:an:addr"}, &bytes.Buffer{}, nil, nil); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}

// TestDebugListener boots the daemon with the private -debugaddr
// listener and smoke-tests both debug surfaces: a pprof heap profile
// and the /debug/requests trace ring, neither of which may ride the
// public serving port.
func TestDebugListener(t *testing.T) {
	signals := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-debugaddr", "127.0.0.1:0"},
			&out, signals, func(addr string) { ready <- addr })
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	debugAddr := debugAddrFromLog(t, out.String())

	for _, path := range []string{"/debug/pprof/heap?debug=1", "/debug/requests"} {
		resp, err := http.Get("http://" + debugAddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d\n%s", path, resp.StatusCode, body)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s: empty body", path)
		}
	}
	// The public port must not expose profiles.
	resp, err := http.Get("http://" + addr + "/debug/pprof/heap")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("public port serves pprof")
	}

	signals <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain")
	}
}

// debugAddrFromLog extracts the bound debug address from the startup
// log ("... debug listening on 127.0.0.1:NNN").
func debugAddrFromLog(t *testing.T, log string) string {
	t.Helper()
	for _, line := range strings.Split(log, "\n") {
		if i := strings.Index(line, "debug listening on "); i >= 0 {
			return strings.TrimSpace(line[i+len("debug listening on "):])
		}
	}
	t.Fatalf("no debug listener log:\n%s", log)
	return ""
}
