package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out, runErr
}

func TestRunSingleExperimentQuick(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-id", "E1", "-sizes", "8,16"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "E1") || !strings.Contains(out, "exponent") {
		t.Fatalf("unexpected E1 output:\n%s", out)
	}
}

func TestRunCSV(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-id", "E9", "-sizes", "8,16", "-csv"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "# E9") {
		t.Fatalf("CSV output should start with the table comment:\n%s", out)
	}
	if !strings.Contains(out, "figure,n,T") {
		t.Fatalf("CSV header missing:\n%s", out)
	}
}

func TestRunList(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E7", "E11"} {
		if !strings.Contains(out, id) {
			t.Fatalf("experiment list missing %s:\n%s", id, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-id", "E99"},
		{"-sizes", "abc"},
		{"-sizes", "-4"},
		{"-sizes", ",,"},
	} {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

func TestParseSizes(t *testing.T) {
	got, err := parseSizes(" 8, 16 ,32 ")
	if err != nil || len(got) != 3 || got[0] != 8 || got[2] != 32 {
		t.Fatalf("parseSizes: got %v, %v", got, err)
	}
}
