// Command slapbench runs the reproduction experiment suite (E1–E13,
// indexed in internal/harness) and prints the result tables; the
// simulated-cost conventions the tables use are defined in
// docs/METRICS.md, and the system layout in docs/ARCHITECTURE.md.
//
// Usage:
//
//	slapbench                      # full suite, default sizes
//	slapbench -id E3 -sizes 64,128,256,512
//	slapbench -quick               # small sizes (CI-friendly)
//	slapbench -csv > results.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"slapcc/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "slapbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("slapbench", flag.ContinueOnError)
	var (
		id    = fs.String("id", "", "run only this experiment (E1..E12)")
		sizes = fs.String("sizes", "", "comma-separated image sizes (default 32,64,128,256,512)")
		quick = fs.Bool("quick", false, "use the quick size sweep (16,32,64)")
		csv   = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		seed  = fs.Uint64("seed", 1, "seed for randomized workloads")
		list  = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}

	cfg := harness.DefaultConfig()
	if *quick {
		cfg = harness.QuickConfig()
	}
	cfg.Seed = *seed
	if *sizes != "" {
		parsed, err := parseSizes(*sizes)
		if err != nil {
			return err
		}
		cfg.Sizes = parsed
	}

	exps := harness.All()
	if *id != "" {
		e, ok := harness.ByID(*id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *id)
		}
		exps = []harness.Experiment{e}
	}

	for _, e := range exps {
		fmt.Fprintf(os.Stderr, "running %s — %s ...\n", e.ID, e.Title)
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			if *csv {
				if err := t.WriteCSV(os.Stdout); err != nil {
					return err
				}
			} else if err := t.Render(os.Stdout); err != nil {
				return err
			}
		}
	}
	return nil
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid size %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}
