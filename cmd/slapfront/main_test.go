package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"slapcc"
	"slapcc/api"
	"slapcc/client"
	"slapcc/internal/server"
)

// TestDaemonLifecycle boots slapfront on an ephemeral port in front of
// one real slapd handler, labels strip-mined through the real client,
// checks the answer against the in-process reference, then delivers
// the shutdown signal — the whole coordinator loop in one test.
func TestDaemonLifecycle(t *testing.T) {
	backend := httptest.NewServer(server.New(server.Config{Workers: 2}))
	defer backend.Close()

	signals := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-backends", backend.URL, "-probe", "0"},
			&out, signals, func(addr string) { ready <- addr })
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	c := client.New("http://" + addr)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	img := slapcc.RandomImage(32, 0.5, 42)
	want, err := slapcc.LabelLarge(img, slapcc.Options{ArrayWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Label(ctx, img, api.Params{Format: "raw", ArrayWidth: 8, WantLabels: true})
	if err != nil {
		t.Fatalf("label: %v", err)
	}
	if resp.Components != want.Labels.ComponentCount() || resp.Metrics.TimeSteps != want.Metrics.Time {
		t.Fatalf("cluster labeling diverged from local strip-mined run: %+v", resp)
	}

	signals <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not stop")
	}
	if !strings.Contains(out.String(), "stopped") {
		t.Fatalf("no shutdown log:\n%s", out.String())
	}
}

// TestBadFlags: flag errors surface instead of starting a daemon.
func TestBadFlags(t *testing.T) {
	if err := run([]string{"-backends"}, &bytes.Buffer{}, nil, nil); err == nil {
		t.Fatal("dangling -backends accepted")
	}
	if err := run([]string{"-addr", "definitely:not:an:addr"}, &bytes.Buffer{}, nil, nil); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}

// TestDebugListener boots slapfront with the private -debugaddr
// listener and smoke-tests the pprof heap profile and the
// /debug/requests trace ring on it.
func TestDebugListener(t *testing.T) {
	signals := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-debugaddr", "127.0.0.1:0"},
			&out, signals, func(addr string) { ready <- addr })
	}()

	select {
	case <-ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	debugAddr := debugAddrFromLog(t, out.String())

	for _, path := range []string{"/debug/pprof/heap?debug=1", "/debug/requests"} {
		resp, err := http.Get("http://" + debugAddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d\n%s", path, resp.StatusCode, body)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s: empty body", path)
		}
	}

	signals <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// debugAddrFromLog extracts the bound debug address from the startup
// log ("... debug listening on 127.0.0.1:NNN").
func debugAddrFromLog(t *testing.T, log string) string {
	t.Helper()
	for _, line := range strings.Split(log, "\n") {
		if i := strings.Index(line, "debug listening on "); i >= 0 {
			return strings.TrimSpace(line[i+len("debug listening on "):])
		}
	}
	t.Fatalf("no debug listener log:\n%s", log)
	return ""
}
