// Command slapfront serves the slapd API in front of a fleet of slapd
// backends: each image is split into array-width strips, the strips
// fan out over the SLR1 wire format, and the responses are stitched
// with the exact seam merge a local strip-mined run performs — so a
// cluster answer is byte-identical to a single-machine answer.
//
// The point of the front end is surviving the fleet: per-job timeouts
// and retries with capped backoff, active health probes, per-backend
// circuit breakers, re-sharding a dead backend's strips across the
// survivors, and — with every backend down — degrading to local
// execution instead of going dark.
//
// Usage:
//
//	slapfront -addr :8118 -backends http://b1:8117,http://b2:8117,http://b3:8117
//	curl -s --data-binary @frame.png localhost:8118/v1/label | jq .components
//	curl -s localhost:8118/healthz | jq .
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"slapcc/internal/cluster"
	"slapcc/internal/imageio"
	"slapcc/internal/obs"
)

func main() {
	signals := make(chan os.Signal, 1)
	signal.Notify(signals, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, signals, nil); err != nil {
		fmt.Fprintln(os.Stderr, "slapfront:", err)
		os.Exit(1)
	}
}

// run starts the coordinator and blocks until a signal arrives. ready
// (optional) receives the bound address once the listener is up — the
// test hook, and handy for scripts using -addr :0.
func run(args []string, out io.Writer, signals <-chan os.Signal, ready func(addr string)) error {
	fs := flag.NewFlagSet("slapfront", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8118", "listen address (host:port; :0 picks a free port)")
		backends    = fs.String("backends", "", "comma-separated slapd base URLs (empty = run everything locally)")
		jobTimeout  = fs.Duration("jobtimeout", 30*time.Second, "per-strip-job attempt timeout")
		retries     = fs.Int("retries", 4, "attempt budget per strip job before local fallback")
		backoff     = fs.Duration("backoff", 25*time.Millisecond, "base between-attempt backoff (doubles per attempt, jittered)")
		maxWait     = fs.Duration("maxwait", time.Second, "cap on any between-attempt wait")
		probe       = fs.Duration("probe", 2*time.Second, "active /healthz probe interval (0 disables probing)")
		probeWait   = fs.Duration("probetimeout", 2*time.Second, "per-probe timeout")
		breakFails  = fs.Int("breakerfails", 3, "consecutive failures that open a backend's breaker")
		cooldown    = fs.Duration("cooldown", 5*time.Second, "open-breaker cooldown before a half-open trial")
		concurrency = fs.Int("concurrency", 0, "strip jobs in flight per request (0 = 2 per backend)")
		maxW        = fs.Int("maxwidth", 0, "max image width (0 = default)")
		maxH        = fs.Int("maxheight", 0, "max image height (0 = default)")
		maxPix      = fs.Int64("maxpixels", 0, "max image pixels (0 = default)")
		maxBody     = fs.Int64("maxbody", 0, "max request body bytes (0 = 64 MiB)")
		hedgeDelay  = fs.Duration("hedgedelay", 50*time.Millisecond, "floor before a straggling strip job is hedged to a second backend (the observed job p95 raises it)")
		hedgeMax    = fs.Int("hedgemax", 2, "max hedged duplicates per request (0 disables hedging)")
		debugAddr   = fs.String("debugaddr", "", "private debug listener for pprof and /debug/requests (e.g. 127.0.0.1:6061; empty disables; keep it off public interfaces)")

		readHeader = fs.Duration("readheadertimeout", 5*time.Second, "time allowed to read a request's headers")
		readWait   = fs.Duration("readtimeout", 2*time.Minute, "time allowed to read a whole request")
		writeWait  = fs.Duration("writetimeout", 2*time.Minute, "time allowed to write a response")
		idleWait   = fs.Duration("idletimeout", 2*time.Minute, "keep-alive idle connection timeout")
		maxHeader  = fs.Int("maxheaderbytes", 1<<20, "max request header bytes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	co := cluster.New(cluster.Config{
		Backends:         urls,
		JobTimeout:       *jobTimeout,
		RetryBudget:      *retries,
		BackoffBase:      *backoff,
		BackoffMax:       *maxWait,
		ProbeInterval:    *probe,
		ProbeTimeout:     *probeWait,
		BreakerThreshold: *breakFails,
		BreakerCooldown:  *cooldown,
		JobConcurrency:   *concurrency,
		Limits:           imageio.Limits{MaxWidth: *maxW, MaxHeight: *maxH, MaxPixels: *maxPix},
		MaxBodyBytes:     *maxBody,
		HedgeDelay:       *hedgeDelay,
		HedgeMax:         *hedgeMax,
	})
	defer co.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Slow-loris hardening: clients that trickle headers or bodies are
	// disconnected instead of holding goroutines open indefinitely.
	hs := &http.Server{
		Handler:           co,
		ReadHeaderTimeout: *readHeader,
		ReadTimeout:       *readWait,
		WriteTimeout:      *writeWait,
		IdleTimeout:       *idleWait,
		MaxHeaderBytes:    *maxHeader,
	}
	errc := make(chan error, 1)
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()
	fmt.Fprintf(out, "slapfront: listening on %s (%d backends)\n", ln.Addr(), len(urls))
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		dhs := &http.Server{Handler: obs.DebugMux(co.DebugHandler()), ReadHeaderTimeout: *readHeader}
		defer dhs.Close()
		go dhs.Serve(dln)
		fmt.Fprintf(out, "slapfront: debug listening on %s\n", dln.Addr())
	}
	if ready != nil {
		ready(ln.Addr().String())
	}

	select {
	case err := <-errc:
		return err
	case <-signals:
	}

	fmt.Fprintln(out, "slapfront: shutting down...")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	fmt.Fprintln(out, "slapfront: stopped, bye")
	return nil
}
