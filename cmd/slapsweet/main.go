// Command slapsweet is the repo's end-to-end benchmark and regression
// harness, in the mold of the Go benchmarks repo's sweet/bent drivers.
// One invocation boots a real slapd in process, drives the named
// scenarios (steady-state, burst, overload, strip-mined, batch,
// cost=host vs cost=bitserial, and the core multicore sweeps), captures
// diagnostics (CPU/heap profiles from the debug listener, GC deltas,
// per-stage Server-Timing percentiles), and emits the results twice:
// Go benchmark lines on stdout (benchstat-ready) and a typed BENCH JSON
// artifact (see internal/benchfmt and docs/BENCHMARKING.md).
//
// Usage:
//
//	slapsweet -o BENCH_pr10.json                 # full run, all scenarios
//	slapsweet -short -run 'steady|engine'        # seconds-long smoke
//	slapsweet -o new.json -diff BENCH_pr8.json   # exit 1 on regression
//	slapsweet -list                              # scenario inventory
//
// -diff compares the fresh run against a committed trajectory point
// with the benchstat-style significance test: sampled metrics gate on
// Mann-Whitney + a practical threshold, legacy point metrics on a loose
// collapse threshold, and informational metrics (latencies, GC) never
// gate. A significant regression exits non-zero — the CI gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"slapcc/internal/benchfmt"
	"slapcc/internal/sweet"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slapsweet:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// run executes the harness; the int is the exit code (1 = error,
// 2 = regression gate fired), separated from err so tests can tell a
// failed run from a failed diff.
func run(args []string, out, errw io.Writer) (int, error) {
	fs := flag.NewFlagSet("slapsweet", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		pattern  = fs.String("run", "", "anchored regexp selecting scenarios (empty = all; see -list)")
		list     = fs.Bool("list", false, "print the scenario inventory and exit")
		short    = fs.Bool("short", false, "seconds-long smoke scale instead of full measurement scale")
		count    = fs.Int("count", 0, "samples per core measurement (0 = 3)")
		gmp      = fs.String("gmp", "", "comma-separated GOMAXPROCS sweep for core scenarios (empty = 1,2,4[,NumCPU])")
		outPath  = fs.String("o", "", "write the typed BENCH JSON artifact here")
		pr       = fs.Int("pr", 0, "PR number stamped into the artifact")
		title    = fs.String("title", "", "title stamped into the artifact")
		profDir  = fs.String("profiledir", "", "capture CPU+heap pprof profiles per service scenario into this directory")
		diffPath = fs.String("diff", "", "compare against this BENCH file (legacy shapes accepted); exit 2 on significant regression")
		seed     = fs.Uint64("seed", 1, "corpus seed")
	)
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if *list {
		for _, s := range sweet.Scenarios() {
			fmt.Fprintf(out, "%-14s %-8s %s\n", s.Name, s.Kind, s.Desc)
		}
		return 0, nil
	}

	cfg := sweet.Config{
		Short:      *short,
		Count:      *count,
		ProfileDir: *profDir,
		Seed:       *seed,
		Log:        errw,
	}
	if *gmp != "" {
		for _, part := range strings.Split(*gmp, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || p < 1 {
				return 1, fmt.Errorf("bad -gmp entry %q (want positive ints)", part)
			}
			cfg.GoMaxProcs = append(cfg.GoMaxProcs, p)
		}
	}

	f, err := sweet.Run(*pattern, cfg)
	if err != nil {
		return 1, err
	}
	f.PR = *pr
	f.Title = *title
	if f.Title == "" {
		f.Title = "slapsweet run"
	}

	if err := benchfmt.WriteGoBench(out, f); err != nil {
		return 1, err
	}
	if *outPath != "" {
		if err := f.Write(*outPath); err != nil {
			return 1, err
		}
		fmt.Fprintf(errw, "slapsweet: wrote %s (%d metrics)\n", *outPath, len(f.Results))
	}

	if *diffPath != "" {
		old, err := benchfmt.Load(*diffPath)
		if err != nil {
			return 1, fmt.Errorf("loading -diff baseline: %w", err)
		}
		d := benchfmt.Compare(old, f, benchfmt.DiffOptions{})
		if err := d.Render(out); err != nil {
			return 1, err
		}
		if regs := d.Regressions(); len(regs) > 0 {
			return 2, fmt.Errorf("%d significant regression(s) vs %s", len(regs), *diffPath)
		}
		fmt.Fprintf(errw, "slapsweet: no significant regression vs %s\n", *diffPath)
	}
	return 0, nil
}
