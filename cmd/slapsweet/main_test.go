package main

import (
	"bytes"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"slapcc/internal/benchfmt"
)

// goBenchLine is the Go benchmark output contract: benchstat must be
// able to parse every stdout line the harness emits.
var goBenchLine = regexp.MustCompile(`^BenchmarkSweet/[a-z0-9/._\-]+ \t\s+1 \t\s+[0-9.e+\-]+ \S+$`)

// TestSweetSmoke is the in-process end-to-end smoke: boot a real slapd,
// drive a service scenario and a core scenario at short scale, and
// check both output formats — Go benchmark lines on stdout and a
// schema-valid typed BENCH artifact on disk.
func TestSweetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a daemon and measures; skipped in -short")
	}
	outPath := filepath.Join(t.TempDir(), "BENCH_smoke.json")
	var out, errw bytes.Buffer
	code, err := run([]string{
		"-short", "-run", "steady|engine", "-count", "3",
		"-o", outPath, "-pr", "10", "-title", "smoke",
	}, &out, &errw)
	if err != nil || code != 0 {
		t.Fatalf("run: code %d, err %v\nstderr:\n%s", code, err, errw.String())
	}

	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("want a benchmark line per metric, got %d lines:\n%s", len(lines), out.String())
	}
	for _, line := range lines {
		if !goBenchLine.MatchString(line) {
			t.Errorf("stdout line is not Go benchmark format: %q", line)
		}
	}

	f, err := benchfmt.Load(outPath)
	if err != nil {
		t.Fatalf("artifact unreadable: %v", err)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("artifact invalid: %v", err)
	}
	if f.Schema != benchfmt.SchemaV1 || f.PR != 10 {
		t.Errorf("schema %q PR %d, want %q 10", f.Schema, f.PR, benchfmt.SchemaV1)
	}
	if f.Runner.Cores == 0 || f.Runner.GoVersion == "" {
		t.Errorf("runner provenance missing: %+v", f.Runner)
	}
	for _, name := range []string{
		"steady/frames_per_s",
		"steady/latency_p99_ms",
		"steady/stage/label_p95_ms",
		"core/engine-seq/mb_per_s",
		"core/engine-par/gmp2/mb_per_s",
		"core/engine-par/gmp4/mb_per_s",
		"core/engine-host/mb_per_s",
	} {
		r := f.Find(name)
		if r == nil {
			t.Errorf("artifact missing %s", name)
			continue
		}
		if r.Value <= 0 {
			t.Errorf("%s: non-positive value %v", name, r.Value)
		}
	}
	// Core metrics must carry raw samples so a later diff can use the
	// significance test instead of the loose point heuristic.
	if r := f.Find("core/engine-seq/mb_per_s"); r != nil && len(r.Samples) != 3 {
		t.Errorf("core/engine-seq/mb_per_s: %d samples, want 3", len(r.Samples))
	}
}

// TestSweetDiffGateFires: a baseline claiming absurdly high throughput
// must make -diff exit with the regression code.
func TestSweetDiffGateFires(t *testing.T) {
	if testing.Short() {
		t.Skip("measures; skipped in -short")
	}
	dir := t.TempDir()
	base := &benchfmt.File{
		Schema: benchfmt.SchemaV1, PR: 8, Title: "impossible baseline",
		Runner: benchfmt.Runner{Cores: 1, GOMAXPROCS: 1},
		Results: []benchfmt.Result{{
			Name: "core/reuse/mb_per_s", Unit: "MB/s",
			Better: benchfmt.HigherIsBetter,
			Value:  1e9, Samples: []float64{1e9, 1e9 + 1, 1e9 + 2},
		}},
	}
	basePath := filepath.Join(dir, "BENCH_base.json")
	if err := base.Write(basePath); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	code, err := run([]string{"-short", "-run", "reuse", "-diff", basePath}, &out, &errw)
	if code != 2 || err == nil {
		t.Fatalf("want exit code 2 with error, got code %d err %v\nstdout:\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("rendered diff does not flag the regression:\n%s", out.String())
	}
}

// TestSweetList pins the scenario inventory the docs enumerate.
func TestSweetList(t *testing.T) {
	var out, errw bytes.Buffer
	code, err := run([]string{"-list"}, &out, &errw)
	if err != nil || code != 0 {
		t.Fatalf("run -list: code %d err %v", code, err)
	}
	for _, name := range []string{
		"steady", "burst", "overload", "strip", "batch", "cost",
		"engine", "stream", "stripworkers", "reuse", "linktune",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list missing scenario %s:\n%s", name, out.String())
		}
	}
}

// TestSweetBadFlags: unknown scenarios and malformed -gmp fail cleanly.
func TestSweetBadFlags(t *testing.T) {
	var out, errw bytes.Buffer
	if code, err := run([]string{"-run", "nonesuch"}, &out, &errw); err == nil || code != 1 {
		t.Errorf("unknown scenario: want code 1 with error, got %d, %v", code, err)
	}
	if code, err := run([]string{"-gmp", "2,zero"}, &out, &errw); err == nil || code != 1 {
		t.Errorf("bad -gmp: want code 1 with error, got %d, %v", code, err)
	}
}
