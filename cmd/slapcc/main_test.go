package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"slapcc/internal/bitmap"
	"slapcc/internal/core"
	"slapcc/internal/imageio"
	"slapcc/internal/slap"
)

// capture redirects os.Stdout around fn and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out, runErr
}

func TestRunGenerateAndShow(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-gen", "checker", "-n", "8", "-show", "-metrics", "-profile"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"components: 32", "phases:", "left:unionfind", "per-PE completion"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunList(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-list"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "checker") || !strings.Contains(out, "evenrowruns") {
		t.Fatalf("family list incomplete:\n%s", out)
	}
}

func TestRunPBMInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "img.pbm")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := bitmap.Checker(6).WritePBM(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out, err := capture(t, func() error { return run([]string{"-in", path}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "components: 18") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunAggregate(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-gen", "frames", "-n", "12", "-agg", "sum", "-show"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "aggregate (sum") {
		t.Fatalf("missing aggregate output:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                    // no input chosen
		{"-gen", "nope"},                      // unknown family
		{"-gen", "checker", "-n", "0"},        // bad size
		{"-gen", "checker", "-in", "x.pbm"},   // both inputs
		{"-in", "/nonexistent/file.pbm"},      // missing file
		{"-gen", "checker", "-uf", "bogus"},   // unknown UF kind
		{"-gen", "checker", "-agg", "median"}, // unknown monoid
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

func TestRunConn8(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-gen", "checker", "-n", "8", "-conn", "8", "-parallel", "-speculate"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "components: 1 ") {
		t.Fatalf("8-connected checker should be one component:\n%s", out)
	}
	if _, err := capture(t, func() error {
		return run([]string{"-gen", "checker", "-n", "8", "-conn", "5"})
	}); err == nil {
		t.Fatal("want error for invalid connectivity")
	}
}

func TestRunBitSerialAndVariants(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-gen", "evenrowruns", "-n", "16", "-bitserial", "-uf", "blum", "-idle", "-unitcost"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "uf=blum") {
		t.Fatalf("expected blum UF in output:\n%s", out)
	}
}

// TestRunArrayStripMined: -array strip-mines wide images; the built-in
// -verify cross-check against the sequential reference runs on the
// stitched global labeling, and the seam-merge phase shows in -metrics.
func TestRunArrayStripMined(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-gen", "random50", "-n", "64", "-array", "16", "-metrics"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"array: 16 PEs, 4 strips", "seam-merge"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Strip workers are a host-side knob only; the run must agree.
	out2, err := capture(t, func() error {
		return run([]string{"-gen", "random50", "-n", "64", "-array", "16", "-stripworkers", "4"})
	})
	if err != nil {
		t.Fatal(err)
	}
	line := func(s string) string {
		for _, ln := range strings.Split(s, "\n") {
			if strings.HasPrefix(ln, "simulated time:") {
				return ln
			}
		}
		return ""
	}
	if line(out) == "" || line(out) != line(out2) {
		t.Errorf("strip workers changed the simulated time:\n%q\nvs\n%q", line(out), line(out2))
	}
}

// TestRunBitSerialNonSquare: -bitserial sizes words from the pixel count
// (WordBitsForDims), not from max(w, h)²: a 32×4 image is charged 8-bit
// words (⌈lg 2·32·4⌉), where the old maxDim sizing billed 11-bit words.
func TestRunBitSerialNonSquare(t *testing.T) {
	img := bitmap.RandomRect(32, 4, 0.5, 3)
	dir := t.TempDir()
	path := filepath.Join(dir, "rect.pbm")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.WritePBM(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	want, err := core.Label(img, core.Options{Cost: slap.BitSerial(slap.WordBitsForDims(32, 4))})
	if err != nil {
		t.Fatal(err)
	}
	overCharged, err := core.Label(img, core.Options{Cost: slap.BitSerial(slap.WordBitsFor(32))})
	if err != nil {
		t.Fatal(err)
	}
	if want.Metrics.Time == overCharged.Metrics.Time {
		t.Fatal("test image cannot discriminate word widths (no link traffic?)")
	}

	out, err := capture(t, func() error {
		return run([]string{"-in", path, "-bitserial"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("simulated time: %d steps", want.Metrics.Time); !strings.Contains(out, want) {
		t.Errorf("output missing %q (dims-based word sizing):\n%s", want, out)
	}
	if bad := fmt.Sprintf("simulated time: %d steps", overCharged.Metrics.Time); strings.Contains(out, bad) {
		t.Errorf("CLI still charges maxDim-based words:\n%s", out)
	}
}

// TestRunFormatInputs: -in reads every imageio codec, pinned (-format)
// and sniffed (auto); the labeling agrees across formats.
func TestRunFormatInputs(t *testing.T) {
	img := bitmap.Checker(6) // 18 components
	dir := t.TempDir()
	for _, f := range imageio.Formats() {
		data, err := imageio.EncodeBytes(img, f)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "img."+string(f))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		for _, args := range [][]string{
			{"-in", path, "-format", string(f)},
			{"-in", path}, // auto-sniff
		} {
			out, err := capture(t, func() error { return run(args) })
			if err != nil {
				t.Fatalf("%v: %v", args, err)
			}
			if !strings.Contains(out, "components: 18") {
				t.Errorf("%v: wrong labeling:\n%s", args, out)
			}
		}
	}
	if _, err := capture(t, func() error {
		return run([]string{"-in", filepath.Join(dir, "img.png"), "-format", "jpeg"})
	}); err == nil || !strings.Contains(err.Error(), "jpeg") {
		t.Fatalf("bad -format: %v", err)
	}
}

// TestRunAggregateStripMined: -agg now strip-mines with -array (the
// refusal of PR 3/4 is gone); the per-pixel fold the strip-mined CLI
// run prints must match the whole-image run's.
func TestRunAggregateStripMined(t *testing.T) {
	whole, err := capture(t, func() error {
		return run([]string{"-gen", "random50", "-n", "32", "-agg", "sum", "-show"})
	})
	if err != nil {
		t.Fatal(err)
	}
	strip, err := capture(t, func() error {
		return run([]string{"-gen", "random50", "-n", "32", "-array", "8", "-agg", "sum", "-show"})
	})
	if err != nil {
		t.Fatalf("strip-mined -agg errored: %v", err)
	}
	marker := "per-pixel aggregate:"
	wi, si := strings.Index(whole, marker), strings.Index(strip, marker)
	if wi < 0 || si < 0 {
		t.Fatalf("missing aggregate output:\n%s", strip)
	}
	if whole[wi:] != strip[si:] {
		t.Errorf("strip-mined per-pixel aggregate differs from whole-image run:\n%s\nvs\n%s", strip[si:], whole[wi:])
	}
	if !strings.Contains(strip, "array: 8 PEs") {
		t.Fatalf("strip-mined run summary missing:\n%s", strip)
	}
}

// TestRunSeamScheduleFlags: -seam/-schedule select the models, show in
// the run summary, and reject unknown values.
func TestRunSeamScheduleFlags(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-gen", "random50", "-n", "32", "-array", "8", "-seam", "host", "-schedule", "pipelined", "-metrics"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pipelined schedule", "host seam relabel", "seam-merge"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "seam-broadcast") {
		t.Errorf("host seam model still emitted seam-broadcast:\n%s", out)
	}
	out, err = capture(t, func() error {
		return run([]string{"-gen", "random50", "-n", "32", "-array", "8", "-metrics"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"distributed seam relabel", "seam-broadcast", "seam-rewrite"} {
		if !strings.Contains(out, want) {
			t.Errorf("default output missing %q:\n%s", want, out)
		}
	}
	if _, err := capture(t, func() error {
		return run([]string{"-gen", "random50", "-n", "32", "-array", "8", "-seam", "psychic"})
	}); err == nil || !strings.Contains(err.Error(), "seam") {
		t.Fatalf("unknown -seam accepted: %v", err)
	}
}
