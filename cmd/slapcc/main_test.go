package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"slapcc/internal/bitmap"
)

// capture redirects os.Stdout around fn and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out, runErr
}

func TestRunGenerateAndShow(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-gen", "checker", "-n", "8", "-show", "-metrics", "-profile"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"components: 32", "phases:", "left:unionfind", "per-PE completion"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunList(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-list"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "checker") || !strings.Contains(out, "evenrowruns") {
		t.Fatalf("family list incomplete:\n%s", out)
	}
}

func TestRunPBMInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "img.pbm")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := bitmap.Checker(6).WritePBM(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out, err := capture(t, func() error { return run([]string{"-in", path}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "components: 18") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunAggregate(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-gen", "frames", "-n", "12", "-agg", "sum", "-show"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "aggregate (sum") {
		t.Fatalf("missing aggregate output:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                    // no input chosen
		{"-gen", "nope"},                      // unknown family
		{"-gen", "checker", "-n", "0"},        // bad size
		{"-gen", "checker", "-in", "x.pbm"},   // both inputs
		{"-in", "/nonexistent/file.pbm"},      // missing file
		{"-gen", "checker", "-uf", "bogus"},   // unknown UF kind
		{"-gen", "checker", "-agg", "median"}, // unknown monoid
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

func TestRunConn8(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-gen", "checker", "-n", "8", "-conn", "8", "-parallel", "-speculate"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "components: 1 ") {
		t.Fatalf("8-connected checker should be one component:\n%s", out)
	}
	if _, err := capture(t, func() error {
		return run([]string{"-gen", "checker", "-n", "8", "-conn", "5"})
	}); err == nil {
		t.Fatal("want error for invalid connectivity")
	}
}

func TestRunBitSerialAndVariants(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-gen", "evenrowruns", "-n", "16", "-bitserial", "-uf", "blum", "-idle", "-unitcost"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "uf=blum") {
		t.Fatalf("expected blum UF in output:\n%s", out)
	}
}
