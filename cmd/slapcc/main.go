// Command slapcc labels the connected components of a binary image on
// the simulated scan line array processor and reports the labeling and
// the machine-level cost.
//
// Usage:
//
//	slapcc -gen checker -n 16 -show
//	slapcc -in image.pbm -uf blum -metrics
//	slapcc -gen hserpentine -n 64 -bitserial -metrics
//	slapcc -gen random50 -n 32 -agg sum -show
//	slapcc -gen random50 -n 1024 -array 256 -schedule pipelined -metrics
//	slapcc -gen random50 -n 1024 -cost host
//
// Input is either a generated family member (-gen, -n) or a file (-in;
// "-" reads stdin) in any format internal/imageio understands — PNG,
// plain PBM (P1), ASCII art, or the SLR1 raw wire format (docs/SLR1.md)
// — selected with -format (default auto-sniffs), the same codecs the
// slapd service ingests.
//
// Images wider than -array strip-mine onto the fixed-width machine
// (labeling and -agg aggregation alike); -seam selects the distributed
// (default) or host seam-relabel model and -schedule the sequential
// (default) or pipelined strip schedule. Every phase the run can emit
// and the composition equations are documented in docs/METRICS.md.
//
// -cost selects the execution engine: unit (default) and bitserial run
// the metered simulator under the matching link charge; host answers
// with the word-parallel host labeler — identical labels and
// aggregates, no simulation, so no simulated metrics to print.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"slapcc/internal/bitmap"
	"slapcc/internal/core"
	"slapcc/internal/imageio"
	"slapcc/internal/seqcc"
	"slapcc/internal/slap"
	"slapcc/internal/unionfind"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "slapcc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("slapcc", flag.ContinueOnError)
	var (
		genName   = fs.String("gen", "", "generate this workload family (see -list)")
		n         = fs.Int("n", 32, "image size for -gen")
		array     = fs.Int("array", 0, "physical PE count; images wider than this are strip-mined (0 = array as wide as the image)")
		stripWk   = fs.Int("stripworkers", 0, "fan strips of a strip-mined run across this many worker labelers (host wall time only)")
		seam      = fs.String("seam", "", "strip-mined seam-relabel model: distributed (default; broadcast + per-PE rewrite) or host (sequential host pass)")
		schedule  = fs.String("schedule", "", "strip schedule model: sequential (default) or pipelined (overlap strip inputs with compute)")
		inPath    = fs.String("in", "", "read an image from this file ('-' = stdin)")
		format    = fs.String("format", "auto", "input format for -in: png, pbm, art, raw, or auto (sniff)")
		ufKind    = fs.String("uf", string(unionfind.KindTarjan), "union-find kind: "+kindList())
		idle      = fs.Bool("idle", false, "enable idle-time path compression (§3 heuristic)")
		cost      = fs.String("cost", "", "execution engine and charge model: unit (default), bitserial, or host (no simulation)")
		bitserial = fs.Bool("bitserial", false, "use 1-bit links (Theorem 5 machine); same as -cost bitserial")
		unitUF    = fs.Bool("unitcost", false, "account unions/finds at unit cost (Lemma 2 accounting)")
		agg       = fs.String("agg", "", "also aggregate per component: min, max, sum, or or")
		show      = fs.Bool("show", false, "print the image and labeling as ASCII art")
		metrics   = fs.Bool("metrics", false, "print per-phase machine metrics")
		profile   = fs.Bool("profile", false, "print per-PE completion profiles (the systolic wavefront)")
		parallel  = fs.Bool("parallel", false, "simulate with one goroutine per PE (same metrics, less wall time)")
		speculate = fs.Bool("speculate", false, "enable speculative union forwarding (§3 heuristic)")
		conn      = fs.Int("conn", 4, "pixel connectivity: 4 (paper) or 8")
		verify    = fs.Bool("verify", true, "cross-check against the sequential reference")
		list      = fs.Bool("list", false, "list workload families and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, f := range bitmap.Families() {
			fmt.Printf("%-14s %s\n", f.Name, f.Description)
		}
		return nil
	}

	img, err := loadImage(*genName, *inPath, *format, *n)
	if err != nil {
		return err
	}

	// Normalized like the server's query parameters, so the same value
	// works on both front ends.
	seamModel := core.SeamModel(strings.ToLower(*seam))
	scheduleModel := core.ScheduleModel(strings.ToLower(*schedule))
	opt := core.Options{
		UF:              unionfind.Kind(*ufKind),
		Connectivity:    bitmap.Connectivity(*conn),
		IdleCompression: *idle,
		UnitCostUF:      *unitUF,
		Profile:         *profile,
		Parallel:        *parallel,
		Speculate:       *speculate,
		ArrayWidth:      *array,
		StripWorkers:    *stripWk,
		Seam:            seamModel,
		Schedule:        scheduleModel,
	}
	hostRun := false
	switch strings.ToLower(*cost) {
	case "", "unit":
	case "bitserial":
		*bitserial = true
	case "host":
		opt.Engine = core.EngineHost
		hostRun = true
	default:
		return fmt.Errorf("unknown cost %q (want unit, bitserial, or host)", *cost)
	}
	if *bitserial {
		// Labels are column-major positions offset by w·h, so the word
		// width depends on the pixel count, not on max(w, h): a square
		// formula over-charges non-square images.
		opt.Cost = slap.BitSerial(slap.WordBitsForDims(img.W(), img.H()))
	}

	res, err := core.LabelLarge(img, opt)
	if err != nil {
		return err
	}
	if *verify {
		if err := seqcc.CheckConn(img, res.Labels, opt.Connectivity); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
	}

	st := seqcc.Summarize(res.Labels)
	fmt.Printf("image: %dx%d, %d foreground pixels (density %.2f)\n",
		img.W(), img.H(), img.CountOnes(), img.Density())
	if *array > 0 && *array < img.W() {
		strips := (img.W() + *array - 1) / *array
		sched, seamName := "sequential", "distributed"
		if scheduleModel == core.SchedulePipelined {
			sched = "pipelined"
		}
		if seamModel == core.SeamHost {
			seamName = "host"
		}
		fmt.Printf("array: %d PEs, %d strips (%s schedule, %s seam relabel)\n",
			*array, strips, sched, seamName)
	}
	fmt.Printf("components: %d (largest %d pixels)\n", st.Components, st.Largest)
	if hostRun {
		fmt.Printf("engine: host (no simulation), uf=%s finds=%d unions=%d\n",
			res.UF.Kind, res.UF.Finds, res.UF.Unions)
	} else {
		// Metrics.N is the physical array width: the image width on plain
		// runs, ArrayWidth on strip-mined ones.
		fmt.Printf("simulated time: %d steps (%.2f steps/PE), uf=%s maxOp=%d\n",
			res.Metrics.Time, float64(res.Metrics.Time)/float64(maxInt(1, res.Metrics.N)),
			res.UF.Kind, res.UF.MaxOpCost)
	}

	if *show {
		fmt.Println("\nimage:")
		fmt.Print(img)
		fmt.Println("labels:")
		fmt.Print(res.Labels)
	}
	if *metrics {
		fmt.Println("\nphases:")
		for _, p := range res.Metrics.Phases {
			fmt.Printf("  %-18s makespan %8d  sends %7d  words %8d  idle %8d  peakQ %4d\n",
				p.Name, p.Makespan, p.Sends, p.Words, p.Idle, p.MaxQueue)
		}
		fmt.Printf("per-PE memory: %d words\n", res.Metrics.PEMemory)
	}
	if *profile {
		fmt.Println("\nper-PE completion profiles (each bar column samples the array left to right):")
		for _, p := range res.Metrics.Phases {
			if len(p.PerPE) == 0 {
				continue
			}
			fmt.Printf("  %-18s %s\n", p.Name, sparkline(p.PerPE, 48))
		}
	}
	if *agg != "" {
		op, err := monoidByName(*agg)
		if err != nil {
			return err
		}
		initial := core.Ones(img)
		if op.Name != "sum" {
			for i := range initial {
				initial[i] = int32(i)
			}
		}
		ares, err := core.Aggregate(img, initial, op, opt)
		if err != nil {
			return err
		}
		if hostRun {
			fmt.Printf("\naggregate (%s over %s): host engine\n", op.Name, initialDesc(op))
		} else {
			fmt.Printf("\naggregate (%s over %s): total time %d steps\n",
				op.Name, initialDesc(op), ares.Metrics.Time)
		}
		if *show {
			printAggregate(img, ares)
		}
	}
	return nil
}

func loadImage(genName, inPath, format string, n int) (*bitmap.Bitmap, error) {
	switch {
	case genName != "" && inPath != "":
		return nil, fmt.Errorf("use either -gen or -in, not both")
	case genName != "":
		f, ok := bitmap.FamilyByName(genName)
		if !ok {
			return nil, fmt.Errorf("unknown family %q (try -list)", genName)
		}
		if n < 1 {
			return nil, fmt.Errorf("invalid size %d", n)
		}
		return f.Generate(n), nil
	case inPath != "":
		fm, err := imageio.ParseFormat(format)
		if err != nil {
			return nil, err
		}
		r := io.Reader(os.Stdin)
		if inPath != "-" {
			f, err := os.Open(inPath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			r = f
		}
		// The CLI trusts its operator: only the codecs' own sanity
		// bounds apply, not the service's admission limits.
		return imageio.Decode(r, fm, imageio.Unlimited())
	default:
		return nil, fmt.Errorf("need -gen FAMILY or -in FILE (try -list)")
	}
}

func monoidByName(name string) (core.Monoid, error) {
	switch strings.ToLower(name) {
	case "min":
		return core.Min(), nil
	case "max":
		return core.Max(), nil
	case "sum":
		return core.Sum(), nil
	case "or":
		return core.Or(), nil
	}
	return core.Monoid{}, fmt.Errorf("unknown aggregate op %q (min, max, sum, or)", name)
}

func initialDesc(op core.Monoid) string {
	if op.Name == "sum" {
		return "ones (component areas)"
	}
	return "positions"
}

func printAggregate(img *bitmap.Bitmap, res *core.AggregateResult) {
	fmt.Println("per-pixel aggregate:")
	for y := 0; y < img.H(); y++ {
		for x := 0; x < img.W(); x++ {
			if img.Get(x, y) {
				fmt.Printf("%5d", res.PerPixel[x*img.H()+y])
			} else {
				fmt.Printf("%5s", ".")
			}
		}
		fmt.Println()
	}
}

// sparkline renders values as a fixed-width bar strip using eighth-block
// characters, scaled to the maximum value.
func sparkline(values []int64, width int) string {
	if len(values) == 0 {
		return ""
	}
	if width > len(values) {
		width = len(values)
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	var max int64 = 1
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	out := make([]rune, width)
	for i := 0; i < width; i++ {
		// Sample the bucket's maximum.
		lo, hi := i*len(values)/width, (i+1)*len(values)/width
		if hi == lo {
			hi = lo + 1
		}
		var v int64
		for _, x := range values[lo:hi] {
			if x > v {
				v = x
			}
		}
		idx := int(v * int64(len(blocks)-1) / max)
		out[i] = blocks[idx]
	}
	return string(out)
}

func kindList() string {
	var names []string
	for _, k := range unionfind.Kinds() {
		names = append(names, string(k))
	}
	return strings.Join(names, ", ")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
